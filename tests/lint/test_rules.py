"""Fixture tests for every shipped simlint rule.

Each rule gets three kinds of fixture: snippets that must flag,
snippets that must not, and a suppression-comment check.  Fixtures are
linted from strings with scoped fake paths (rule scoping is by path
fragment), so nothing here touches the filesystem.
"""

import textwrap

import pytest

from repro.lint.engine import lint_source
from repro.lint.registry import all_rules, get_rule

#: Paths inside / outside each scoped rule's domain.
SIM_PATH = "repro/sim/fixture.py"
CC_PATH = "repro/cc/fixture.py"
CORE_PATH = "repro/core/fixture.py"
NEUTRAL_PATH = "somepkg/fixture.py"


def rule_hits(source, path, rule_id):
    """Ids of unsuppressed findings of ``rule_id`` in the snippet."""
    source = textwrap.dedent(source)
    return [
        v
        for v in lint_source(source, path)
        if v.rule_id == rule_id and not v.suppressed
    ]


def test_all_file_rules_registered():
    assert [rule.rule_id for rule in all_rules()] == [
        "fault-stream-misuse",
        "float-time-equality",
        "id-keyed-container",
        "lock-path-discipline",
        "process-protocol",
        "resident-terminal-process",
        "unordered-dict-iteration",
        "unordered-set-iteration",
        "unseeded-global-random",
        "waitable-escape",
        "wall-clock",
    ]


class TestIdKeyedContainer:
    RULE = "id-keyed-container"

    @pytest.mark.parametrize(
        "snippet",
        [
            "jobs[id(event)] = job\n",
            "job = jobs.pop(id(event), None)\n",
            "job = jobs.get(id(event))\n",
            "del jobs[id(event)]\n",
            "seen.add(id(event))\n",
            "table = {id(event): job}\n",
            "found = id(event) in jobs\n",
        ],
    )
    def test_flags(self, snippet):
        assert rule_hits(snippet, NEUTRAL_PATH, self.RULE)

    @pytest.mark.parametrize(
        "snippet",
        [
            "jobs[event] = job\n",
            "print(id(event))\n",
            "label = f'event {id(event)}'\n",
            "jobs[event.key] = job\n",
        ],
    )
    def test_does_not_flag(self, snippet):
        assert not rule_hits(snippet, NEUTRAL_PATH, self.RULE)

    def test_suppression(self):
        snippet = (
            "jobs[id(event)] = job"
            "  # simlint: ignore[id-keyed-container]\n"
        )
        violations = lint_source(snippet, NEUTRAL_PATH)
        assert [v for v in violations if v.suppressed]
        assert not [v for v in violations if not v.suppressed]


class TestUnseededGlobalRandom:
    RULE = "unseeded-global-random"

    @pytest.mark.parametrize(
        "snippet",
        [
            "import random\nx = random.random()\n",
            "import random\nx = random.randint(0, 7)\n",
            "import random\nrandom.shuffle(items)\n",
            "import random\nrandom.seed(42)\n",
            "import numpy as np\nx = np.random.uniform(0, 1)\n",
            "import numpy\nx = numpy.random.choice(items)\n",
            "from random import randint\nx = randint(0, 7)\n",
            "from random import uniform as u\nx = u(0.0, 1.0)\n",
        ],
    )
    def test_flags_in_sim_scope(self, snippet):
        assert rule_hits(snippet, SIM_PATH, self.RULE)

    @pytest.mark.parametrize(
        "snippet",
        [
            # Injected streams are the sanctioned pattern.
            "import random\nstream = random.Random(42)\n"
            "x = stream.random()\n",
            "x = self._stream.uniform(lo, hi)\n",
            "from random import Random\nstream = Random(7)\n",
        ],
    )
    def test_does_not_flag_streams(self, snippet):
        assert not rule_hits(snippet, SIM_PATH, self.RULE)

    def test_out_of_scope_path_not_flagged(self):
        snippet = "import random\nx = random.random()\n"
        assert not rule_hits(snippet, NEUTRAL_PATH, self.RULE)

    def test_suppression(self):
        snippet = (
            "import random\n"
            "x = random.random()"
            "  # simlint: ignore[unseeded-global-random]\n"
        )
        violations = lint_source(snippet, SIM_PATH)
        assert [v for v in violations if v.suppressed]
        assert not [v for v in violations if not v.suppressed]


class TestWallClock:
    RULE = "wall-clock"

    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\nstarted = time.time()\n",
            "import time\nstarted = time.monotonic()\n",
            "import time\nstarted = time.perf_counter()\n",
            "from datetime import datetime\nnow = datetime.now()\n",
            "import datetime\nnow = datetime.datetime.now()\n",
            "from datetime import date\ntoday = date.today()\n",
            "from time import time\nstarted = time()\n",
        ],
    )
    def test_flags(self, snippet):
        assert rule_hits(snippet, SIM_PATH, self.RULE)

    @pytest.mark.parametrize(
        "snippet",
        [
            "now = env.now\n",
            "deadline = self.env.now + delay\n",
            "import time\ntime.sleep(0)\n",
        ],
    )
    def test_does_not_flag(self, snippet):
        assert not rule_hits(snippet, SIM_PATH, self.RULE)

    @pytest.mark.parametrize(
        "path",
        [
            "repro/experiments/cli.py",
            "benchmarks/bench_kernel.py",
        ],
    )
    def test_timing_code_exempt(self, path):
        snippet = "import time\nstarted = time.time()\n"
        assert not rule_hits(snippet, path, self.RULE)

    def test_suppression(self):
        snippet = (
            "import time\n"
            "started = time.time()  # simlint: ignore[wall-clock]\n"
        )
        violations = lint_source(snippet, SIM_PATH)
        assert [v for v in violations if v.suppressed]
        assert not [v for v in violations if not v.suppressed]


class TestUnorderedSetIteration:
    RULE = "unordered-set-iteration"

    @pytest.mark.parametrize(
        "snippet",
        [
            "for page in set(pages):\n    release(page)\n",
            "for page in held.pop(txn, set()):\n    release(page)\n",
            "for page in held.get(txn, set()):\n    release(page)\n",
            "for item in {1, 2, 3}:\n    use(item)\n",
            "order = [use(x) for x in frozenset(items)]\n",
            """
            def release_all(txn):
                pages = set()
                pages.add(txn)
                for page in pages:
                    release(page)
            """,
            """
            def victims(cycle):
                doomed = {t for t in cycle}
                return [abort(t) for t in doomed]
            """,
        ],
    )
    def test_flags_in_cc_scope(self, snippet):
        assert rule_hits(snippet, CC_PATH, self.RULE)

    @pytest.mark.parametrize(
        "snippet",
        [
            "for page in sorted(set(pages)):\n    release(page)\n",
            "for page in sorted(held.pop(txn, set())):\n"
            "    release(page)\n",
            "for page in pages_list:\n    release(page)\n",
            "if page in pages:\n    release(page)\n",  # membership only
            """
            def release_all(txn):
                pages = list(queue)
                for page in pages:
                    release(page)
            """,
        ],
    )
    def test_does_not_flag(self, snippet):
        assert not rule_hits(snippet, CC_PATH, self.RULE)

    def test_out_of_scope_path_not_flagged(self):
        snippet = "for item in {1, 2}:\n    use(item)\n"
        assert not rule_hits(snippet, NEUTRAL_PATH, self.RULE)

    def test_suppression(self):
        snippet = (
            "for page in set(pages):"
            "  # simlint: ignore[unordered-set-iteration]\n"
            "    release(page)\n"
        )
        violations = lint_source(snippet, CC_PATH)
        assert [v for v in violations if v.suppressed]
        assert not [v for v in violations if not v.suppressed]


class TestUnorderedDictIteration:
    RULE = "unordered-dict-iteration"

    @pytest.mark.parametrize(
        "snippet",
        [
            "for txn, mode in holders.items():\n    wound(txn)\n",
            "for txn in waiting.keys():\n    wake(txn)\n",
            "for entry in table.values():\n    grant(entry)\n",
            "order = [wake(t) for t in holders.items()]\n",
            "for txn in held.keys() - released:\n    drop(txn)\n",
            "for page in {1: 'a'}:\n    release(page)\n",
            """
            def release_all(txn):
                held = {}
                held[txn] = 1
                for page in held:
                    release(page)
            """,
            """
            def victims(cycle):
                doomed = {t: 1 for t in cycle}
                return [abort(t) for t in doomed]
            """,
        ],
    )
    def test_flags_in_cc_scope(self, snippet):
        assert rule_hits(snippet, CC_PATH, self.RULE)

    @pytest.mark.parametrize(
        "snippet",
        [
            "for txn in sorted(holders.items()):\n    wound(txn)\n",
            "for txn in waiter_list:\n    wake(txn)\n",
            "if txn in holders:\n    wound(txn)\n",  # membership only
            # Order-insensitive reducers cannot leak iteration order.
            "busy = all(m == 1 for m in holders.values())\n",
            "count = sum(1 for t in holders.keys())\n",
            "worst = max(t.tid for t in holders.values())\n",
            """
            def snapshot(table):
                pages = list(queue)
                for page in pages:
                    release(page)
            """,
        ],
    )
    def test_does_not_flag(self, snippet):
        assert not rule_hits(snippet, CC_PATH, self.RULE)

    def test_out_of_scope_path_not_flagged(self):
        snippet = "for k, v in table.items():\n    use(k)\n"
        assert not rule_hits(snippet, NEUTRAL_PATH, self.RULE)

    def test_reports_as_warning(self):
        snippet = "for k, v in table.items():\n    use(k)\n"
        hits = rule_hits(snippet, CC_PATH, self.RULE)
        assert hits and all(v.severity == "warning" for v in hits)

    def test_suppression(self):
        snippet = (
            "for t, m in holders.items():"
            "  # simlint: ignore[unordered-dict-iteration]\n"
            "    wound(t)\n"
        )
        violations = lint_source(snippet, CC_PATH)
        assert [v for v in violations if v.suppressed]
        assert not [v for v in violations if not v.suppressed]


class TestFloatTimeEquality:
    RULE = "float-time-equality"

    @pytest.mark.parametrize(
        "snippet",
        [
            "if env.now == deadline:\n    fire()\n",
            "if deadline == env.now:\n    fire()\n",
            "done = handle.time == now\n",
            "if now != horizon:\n    advance()\n",
            # Defined, but by arithmetic: not a pure copy.
            "now = self.now + 1.0\nif handle.time == now:\n    pass\n",
            # Parameters are unprovable: callers may pass anything.
            """
            def fire_due(self, now):
                if self.deadline.time == now:
                    self.fire()
            """,
        ],
    )
    def test_flags_in_sim_scope(self, snippet):
        assert rule_hits(snippet, SIM_PATH, self.RULE)

    @pytest.mark.parametrize(
        "snippet",
        [
            "if env.now >= deadline:\n    fire()\n",
            "if count == 3:\n    pass\n",
            "if name == 'now':\n    pass\n",
            "if a.seq == b.seq:\n    pass\n",
        ],
    )
    def test_does_not_flag(self, snippet):
        assert not rule_hits(snippet, SIM_PATH, self.RULE)

    @pytest.mark.parametrize(
        "snippet",
        [
            # Two stored schedule times: exact equality is sound.
            "if self.time != other.time:\n    pass\n",
            # A local that is provably a pure copy of a stored time.
            "now = handle.time\nif handle.time == now:\n    pass\n",
            # The kernel dispatch-loop shape the v1 waivers covered.
            """
            def drain(self, top):
                now = self.now
                if top.time != now:
                    return
                self.fire(top)
            """,
        ],
    )
    def test_flow_discharges_pure_copies(self, snippet):
        assert not rule_hits(snippet, SIM_PATH, self.RULE)

    def test_tests_are_out_of_scope(self):
        # Test code asserts exact clock values the kernel guarantees.
        snippet = "assert env.now == 5.0\n"
        assert not rule_hits(
            snippet, "tests/sim/test_clock.py", self.RULE
        )

    def test_suppression(self):
        snippet = (
            "if top.time == now:"
            "  # simlint: ignore[float-time-equality]\n"
            "    pass\n"
        )
        violations = lint_source(snippet, SIM_PATH)
        assert [v for v in violations if v.suppressed]
        assert not [v for v in violations if not v.suppressed]


class TestProcessProtocol:
    RULE = "process-protocol"

    @pytest.mark.parametrize(
        "snippet",
        [
            # Bare yield in a process body.
            """
            def process(env):
                yield env.timeout(1.0)
                yield
            """,
            # Literal yields in a process body.
            """
            def process(env):
                yield env.timeout(1.0)
                yield 17
            """,
            """
            def process(env):
                yield self.env.event()
                yield (a, b)
            """,
            # Reentrant dispatch from inside a generator.
            """
            def process(env):
                env.run()
                yield env.timeout(1.0)
            """,
            """
            def process(self):
                self.env.run(until=5.0)
                yield self.env.timeout(1.0)
            """,
        ],
    )
    def test_flags(self, snippet):
        assert rule_hits(snippet, NEUTRAL_PATH, self.RULE)

    @pytest.mark.parametrize(
        "snippet",
        [
            # A clean process body.
            """
            def process(env, cpu):
                yield env.timeout(1.0)
                result = yield env.all_of([a, b])
                yield cpu.execute(100)
            """,
            # Ordinary generators (no waitable yields) are not
            # processes: pytest fixtures may bare-yield freely.
            """
            def fixture():
                setup()
                yield
                teardown()
            """,
            """
            def naturals():
                n = 0
                while True:
                    yield n
                    n += 1
            """,
            # env.run() outside any generator is the normal driver.
            """
            def drive(env):
                env.run(until=10.0)
            """,
        ],
    )
    def test_does_not_flag(self, snippet):
        assert not rule_hits(snippet, NEUTRAL_PATH, self.RULE)

    def test_suppression(self):
        snippet = (
            "def process(env):\n"
            "    yield env.timeout(1.0)\n"
            "    yield 17  # simlint: ignore[process-protocol]\n"
        )
        violations = lint_source(snippet, NEUTRAL_PATH)
        assert [v for v in violations if v.suppressed]
        assert not [v for v in violations if not v.suppressed]


class TestFaultStreamMisuse:
    RULE = "fault-stream-misuse"
    FAULTS_PATH = "repro/faults/fixture.py"

    @pytest.mark.parametrize(
        "snippet",
        [
            # Shared-stream names inside the fault subsystem.
            "x = streams.exponential('restart-delay', mean)\n",
            "x = self.streams.bernoulli('write-coin', 0.5)\n",
            "stream = streams.get('page-choice')\n",
            "x = self._streams.uniform('think-0', 0.0, 1.0)\n",
            "n = streams.uniform_int('copy-choice', 0, 3)\n",
            # f-string whose head is not the fault- prefix.
            "x = streams.exponential(f'disk-{node}', mean)\n",
            # f-string starting with an interpolation: unprovable.
            "x = streams.exponential(f'{kind}-crash', mean)\n",
            # Name argument: cannot prove the prefix either.
            "x = streams.exponential(name, mean)\n",
        ],
    )
    def test_flags_in_faults_scope(self, snippet):
        assert rule_hits(snippet, self.FAULTS_PATH, self.RULE)

    @pytest.mark.parametrize(
        "snippet",
        [
            "x = streams.exponential('fault-crash-3', mtbf)\n",
            "x = self.streams.bernoulli('fault-msg-loss', p)\n",
            "stream = streams.get('fault-retry-backoff')\n",
            "x = streams.exponential(f'fault-crash-{node}', mtbf)\n",
            # Not a streams receiver.
            "x = stream.expovariate(1.0 / mean)\n",
            "x = rng.exponential('restart-delay', mean)\n",
        ],
    )
    def test_does_not_flag(self, snippet):
        assert not rule_hits(snippet, self.FAULTS_PATH, self.RULE)

    @pytest.mark.parametrize(
        "path", [SIM_PATH, CORE_PATH, NEUTRAL_PATH]
    )
    def test_out_of_scope_path_not_flagged(self, path):
        snippet = "x = streams.exponential('restart-delay', mean)\n"
        assert not rule_hits(snippet, path, self.RULE)

    def test_suppression(self):
        snippet = (
            "x = streams.get('page-choice')"
            "  # simlint: ignore[fault-stream-misuse]\n"
        )
        violations = lint_source(snippet, self.FAULTS_PATH)
        assert [v for v in violations if v.suppressed]
        assert not [v for v in violations if not v.suppressed]


class TestResidentTerminalProcess:
    RULE = "resident-terminal-process"

    @pytest.mark.parametrize(
        "snippet",
        [
            # The resident design: one Process per terminal.
            """\
            for terminal in range(self.config.workload.num_terminals):
                self.env.process(self._terminal_loop(terminal))
            """,
            """\
            for t in range(num_terminals):
                env.process(loop(t))
            """,
            # Iterating a terminal collection counts too.
            """\
            for handle in self.terminals:
                env.process(handle.run())
            """,
            # Explicitly named terminal processes, loop or not.
            'env.process(body(), name=f"terminal-{index}")\n',
            "env.process(body(), name='terminal-7')\n",
        ],
    )
    def test_flags_in_repro_scope(self, snippet):
        assert rule_hits(snippet, CORE_PATH, self.RULE)

    @pytest.mark.parametrize(
        "snippet",
        [
            # Per-node (not per-terminal) spawns are fine.
            """\
            for node in range(num_nodes):
                env.process(pump(node))
            """,
            # Terminal loops without a spawn are fine.
            """\
            for terminal in range(num_terminals):
                counts[terminal] += 1
            """,
            # Other process names are fine.
            'env.process(run(), name=f"txn-{tid}")\n',
            # A dynamic head means the name is not provably terminal-*.
            'env.process(run(), name=f"{kind}-{tid}")\n',
            # The sanctioned owner of per-terminal machinery.
            """\
            class AggregatedTerminalSource:
                def start(self):
                    for terminal in range(self.num_terminals):
                        self.env.process(self._watch(terminal))
            """,
        ],
    )
    def test_does_not_flag(self, snippet):
        assert not rule_hits(snippet, CORE_PATH, self.RULE)

    def test_out_of_scope_path_not_flagged(self):
        snippet = (
            "for terminal in range(num_terminals):\n"
            "    env.process(loop(terminal))\n"
        )
        assert not rule_hits(snippet, NEUTRAL_PATH, self.RULE)

    def test_suppression(self):
        snippet = (
            "for terminal in range(num_terminals):\n"
            "    env.process(  "
            "# simlint: ignore[resident-terminal-process]\n"
            "        loop(terminal),\n"
            "    )\n"
        )
        violations = lint_source(snippet, CORE_PATH)
        assert [v for v in violations if v.suppressed]
        assert not [v for v in violations if not v.suppressed]


class TestSuppressionSemantics:
    def test_suppression_is_per_rule(self):
        # A waiver for one rule must not silence another on the line.
        snippet = (
            "jobs[id(event)] = job"
            "  # simlint: ignore[wall-clock]\n"
        )
        hits = rule_hits(snippet, NEUTRAL_PATH, "id-keyed-container")
        assert hits

    def test_comma_separated_list(self):
        snippet = (
            "import time\n"
            "jobs[id(time.time())] = 1"
            "  # simlint: ignore[id-keyed-container, wall-clock]\n"
        )
        violations = lint_source(snippet, SIM_PATH)
        assert violations
        assert all(v.suppressed for v in violations)

    def test_suppression_only_applies_to_its_line(self):
        snippet = (
            "# simlint: ignore[id-keyed-container]\n"
            "jobs[id(event)] = job\n"
        )
        assert rule_hits(snippet, NEUTRAL_PATH, "id-keyed-container")


def test_parse_error_reported_as_violation():
    violations = lint_source("def broken(:\n", NEUTRAL_PATH)
    assert [v.rule_id for v in violations] == ["parse-error"]


def test_rule_lookup_and_metadata():
    rule = get_rule("unordered-set-iteration")
    assert rule.include
    assert rule.summary
    with pytest.raises(KeyError):
        get_rule("no-such-rule")
