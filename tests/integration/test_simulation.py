"""End-to-end simulation tests.

These run small but complete simulations (all components wired) and
check global invariants: transactions commit, statistics are coherent,
runs are deterministic under a fixed seed, and the resource balance
matches the paper's stated design point.
"""

import pytest

from repro.cc.registry import ALGORITHM_NAMES
from repro.core.config import (
    ExecutionPattern,
    PlacementKind,
    TransactionClassConfig,
    WorkloadConfig,
    paper_default_config,
)
from repro.core.simulation import Simulation, run_simulation


def small_config(algorithm, think_time=1.0, **kwargs):
    """A fast-to-simulate configuration with real contention."""
    config = paper_default_config(
        algorithm, think_time=think_time, **kwargs
    )
    return config.with_(duration=12.0, warmup=3.0).with_workload(
        num_terminals=32
    )


class TestEndToEnd:
    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    def test_commits_happen_and_no_crashes(self, algorithm):
        result = run_simulation(small_config(algorithm))
        assert result.commits > 0
        assert result.throughput > 0
        assert result.mean_response_time > 0

    def test_no_dc_never_aborts(self):
        result = run_simulation(small_config("no_dc", think_time=0.0))
        assert result.aborts == 0
        assert result.abort_ratio == 0.0

    def test_contended_locking_blocks(self):
        result = run_simulation(small_config("2pl", think_time=0.0))
        assert result.blocking_count > 0
        assert result.mean_blocking_time > 0

    def test_opt_never_blocks(self):
        result = run_simulation(small_config("opt", think_time=0.0))
        assert result.blocking_count == 0

    def test_deterministic_under_seed(self):
        first = run_simulation(small_config("2pl"))
        second = run_simulation(small_config("2pl"))
        assert first.commits == second.commits
        assert first.aborts == second.aborts
        assert first.mean_response_time == pytest.approx(
            second.mean_response_time
        )

    def test_seed_changes_results(self):
        base = small_config("2pl")
        first = run_simulation(base)
        second = run_simulation(base.with_(seed=99))
        assert (
            first.commits != second.commits
            or first.mean_response_time
            != pytest.approx(second.mean_response_time)
        )

    def test_messages_flow(self):
        result = run_simulation(small_config("2pl"))
        # Every committed cohort exchanges 6 messages with the host.
        assert result.messages_sent >= result.commits * 6

    def test_utilizations_are_fractions(self):
        result = run_simulation(small_config("bto", think_time=0.0))
        assert 0.0 < result.avg_disk_utilization <= 1.0
        assert 0.0 < result.avg_node_cpu_utilization <= 1.0
        assert 0.0 <= result.host_cpu_utilization <= 1.0

    def test_io_bound_design_point(self):
        """Paper §4.1: when the disks saturate, node CPUs sit at
        80-90% — the system is slightly I/O bound."""
        config = paper_default_config(
            "no_dc", think_time=0.0
        ).with_(duration=30.0, warmup=10.0)
        result = run_simulation(config)
        assert result.avg_disk_utilization > 0.9
        assert 0.7 < result.avg_node_cpu_utilization < 1.0
        assert (
            result.avg_node_cpu_utilization
            < result.avg_disk_utilization
        )


class TestConfigurationsRun:
    def test_single_node_machine(self):
        config = small_config(
            "2pl",
            num_proc_nodes=1,
            placement=PlacementKind.COLOCATED,
        )
        result = run_simulation(config)
        assert result.commits > 0
        assert result.num_proc_nodes == 1
        assert result.placement_degree == 1

    @pytest.mark.parametrize("degree", [1, 2, 4])
    def test_partial_declustering(self, degree):
        config = small_config(
            "ww",
            placement=(
                PlacementKind.COLOCATED
                if degree == 1
                else PlacementKind.DECLUSTERED
            ),
            placement_degree=degree,
        )
        result = run_simulation(config)
        assert result.commits > 0
        assert result.placement_degree == degree

    def test_four_node_machine(self):
        config = small_config("bto", num_proc_nodes=4)
        result = run_simulation(config)
        assert result.commits > 0

    def test_sequential_execution_pattern(self):
        config = small_config("2pl").with_workload(
            classes=(
                TransactionClassConfig(
                    execution_pattern=ExecutionPattern.SEQUENTIAL
                ),
            )
        )
        result = run_simulation(config)
        assert result.commits > 0

    def test_sequential_slower_than_parallel_at_light_load(self):
        def run(pattern):
            config = paper_default_config(
                "no_dc", think_time=30.0
            ).with_(duration=40.0, warmup=10.0).with_workload(
                num_terminals=8,
                classes=(
                    TransactionClassConfig(execution_pattern=pattern),
                ),
            )
            return run_simulation(config)

        sequential = run(ExecutionPattern.SEQUENTIAL)
        parallel = run(ExecutionPattern.PARALLEL)
        assert (
            parallel.mean_response_time
            < sequential.mean_response_time
        )

    def test_zero_message_cost(self):
        config = small_config("opt").with_resources(inst_per_msg=0.0)
        result = run_simulation(config)
        assert result.commits > 0

    def test_heavy_message_cost_slows_system(self):
        light = run_simulation(
            small_config("no_dc", think_time=0.0)
        )
        heavy = run_simulation(
            small_config("no_dc", think_time=0.0).with_resources(
                inst_per_msg=50_000.0
            )
        )
        assert heavy.throughput < light.throughput

    def test_cc_request_cost_consumes_cpu(self):
        free = run_simulation(small_config("2pl", think_time=0.0))
        costed = run_simulation(
            small_config("2pl", think_time=0.0).with_(
                inst_per_cc_request=5_000.0
            )
        )
        assert (
            costed.avg_node_cpu_utilization
            > free.avg_node_cpu_utilization
        ) or costed.throughput < free.throughput

    def test_target_commits_extends_run(self):
        config = small_config("no_dc", think_time=5.0).with_(
            duration=5.0, target_commits=60, max_duration=120.0
        )
        result = run_simulation(config)
        assert result.commits >= 60 or result.measured_duration >= 115.0


class TestAbortReasons:
    """Each algorithm aborts for its own characteristic reasons."""

    def test_ww_aborts_are_wounds(self):
        result = run_simulation(small_config("ww", think_time=0.0))
        assert set(result.abort_reasons) == {"wound"}

    def test_bto_aborts_are_timestamp_rejects(self):
        result = run_simulation(small_config("bto", think_time=0.0))
        assert set(result.abort_reasons) == {"timestamp-reject"}

    def test_opt_aborts_are_certification_failures(self):
        result = run_simulation(small_config("opt", think_time=0.0))
        assert set(result.abort_reasons) == {"certification-failed"}

    def test_2pl_aborts_are_deadlocks(self):
        result = run_simulation(small_config("2pl", think_time=0.0))
        assert set(result.abort_reasons) <= {
            "local-deadlock",
            "global-deadlock",
        }
        assert result.abort_reasons

    def test_reason_counts_sum_to_aborts(self):
        result = run_simulation(small_config("ww", think_time=0.0))
        assert sum(result.abort_reasons.values()) == result.aborts


class TestRestartBehaviour:
    def test_aborted_transactions_eventually_commit(self):
        """Under WW at heavy load, wounded transactions must still get
        through (no livelock) thanks to original-timestamp restarts."""
        result = run_simulation(small_config("ww", think_time=0.0))
        assert result.aborts > 0
        assert result.commits > 0

    def test_abort_ratio_consistent_with_counts(self):
        result = run_simulation(small_config("opt", think_time=0.0))
        assert result.abort_ratio == pytest.approx(
            result.aborts / result.commits
        )


class TestSimulationObject:
    def test_simulation_exposes_components(self):
        simulation = Simulation(small_config("2pl"))
        assert len(simulation.proc_nodes) == 8
        assert len(simulation.node_cc_managers) == 8
        assert simulation.host.is_host
        assert all(
            not node.is_host for node in simulation.proc_nodes
        )

    def test_run_returns_result_with_label(self):
        simulation = Simulation(small_config("bto"))
        result = simulation.run()
        assert "bto" in result.label
        assert result.cc_algorithm == "bto"

    def test_crash_check_raises_on_model_bug(self):
        simulation = Simulation(small_config("2pl"))

        def broken():
            yield simulation.env.timeout(1.0)
            raise RuntimeError("injected failure")

        simulation.env.process(broken())
        with pytest.raises(Exception, match="injected failure"):
            simulation.run()
