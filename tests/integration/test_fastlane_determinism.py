"""Same-time fast lane must not change a single reported number.

The kernel's zero-delay fast lane is a pure scheduling-representation
change: every callback still runs in exact global ``(time, seq)``
order, so a simulation must produce *bit-identical* metrics with the
fast lane on and off.  These tests run real workload points — the
Figure 2 scaling configuration and a Figure 10-style
degradation point — both ways and compare the full result dictionary.

``REPRO_KERNEL_FASTLANE`` is read at :class:`Environment` construction
time, so toggling it per-run via monkeypatch exercises exactly the
switch the docs describe.
"""

import pytest

from repro.core.simulation import run_simulation
from repro.experiments.fidelity import Fidelity
from repro.experiments.scaling import scaling_config

# Short but non-trivial horizon: a few hundred thousand kernel events
# across the pair of runs, with real contention, aborts, and restarts.
FIDELITY = Fidelity.smoke()


def _fig02_point():
    """Figure 2 scaling workload at the saturated end (8-node, 2PL)."""
    config = scaling_config(
        FIDELITY, algorithm="2pl", think_time=0.0, num_nodes=8
    )
    return config.with_(target_commits=0, max_duration=config.duration)


def _fig10_point():
    """A Figure 10-style degradation point: OPT under heavy load,
    where restarts make the schedule highly sensitive to event
    ordering."""
    config = scaling_config(
        FIDELITY, algorithm="opt", think_time=0.0, num_nodes=8
    )
    return config.with_(target_commits=0, max_duration=config.duration)


def _run_with_fastlane(monkeypatch, config, enabled: bool):
    monkeypatch.setenv(
        "REPRO_KERNEL_FASTLANE", "1" if enabled else "0"
    )
    return run_simulation(config)


@pytest.mark.parametrize(
    "point", [_fig02_point, _fig10_point], ids=["fig02", "fig10"]
)
def test_fastlane_toggle_bit_identical(monkeypatch, point):
    config = point()
    with_lane = _run_with_fastlane(monkeypatch, config, True)
    without_lane = _run_with_fastlane(monkeypatch, config, False)
    assert with_lane.as_dict() == without_lane.as_dict()
    # The flat dict omits the per-node breakdowns; compare those too so
    # "bit-identical" really means every reported number.
    assert (
        with_lane.per_node_cpu_utilization
        == without_lane.per_node_cpu_utilization
    )
    assert (
        with_lane.per_node_disk_utilization
        == without_lane.per_node_disk_utilization
    )
    assert with_lane.abort_reasons == without_lane.abort_reasons
    # Sanity: the runs actually exercised the kernel.
    assert with_lane.commits > 0


def test_fastlane_kwarg_overrides_environment(monkeypatch):
    """``Environment(fast_lane=...)`` wins over the env var."""
    from repro.sim.kernel import Environment

    monkeypatch.setenv("REPRO_KERNEL_FASTLANE", "0")
    assert Environment(fast_lane=True)._fast_enabled
    assert not Environment()._fast_enabled
    monkeypatch.setenv("REPRO_KERNEL_FASTLANE", "1")
    assert not Environment(fast_lane=False)._fast_enabled
    assert Environment()._fast_enabled
