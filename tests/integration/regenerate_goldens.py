"""Regenerate the failure-free figure goldens.

Run from the repo root after a *deliberate* behaviour change to the
failure-free simulator (and only then — the whole point of the golden
is to catch accidental perturbations)::

    PYTHONPATH=src python tests/integration/regenerate_goldens.py
"""

import json
from pathlib import Path

from repro.experiments.fidelity import Fidelity
from repro.experiments.partitioning import figure10
from repro.experiments.scaling import figure2

GOLDEN_PATH = (
    Path(__file__).parent / "goldens" / "fig2_fig10_smoke.json"
)


def series_payload(series_list):
    return [
        {
            "title": series.title,
            "x_values": list(series.x_values),
            "curves": {
                name: list(values)
                for name, values in series.curves.items()
            },
        }
        for series in series_list
    ]


def main() -> None:
    fidelity = Fidelity.smoke()
    payload = {
        "fig2": series_payload(figure2(fidelity)),
        "fig10": series_payload(figure10(fidelity)),
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with GOLDEN_PATH.open("w") as handle:
        json.dump(payload, handle, sort_keys=True, indent=1)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()


