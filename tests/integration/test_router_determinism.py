"""Router and MVCC determinism across kernel toggles and faults.

The router adds a classification + bandit layer on top of the CC
fleet, and MVCC adds version-chain state inside the node managers —
both are new consumers of the seeded streams and the kernel's event
order.  These tests pin the same purity contract the fixed algorithms
already satisfy: the mixed-blend router point is bit-identical under
the full scheduler × fastlane × aggregated-arrivals cross and under
parallel sweep execution, and a faulted MVCC run (crash_reset wiping
the volatile version chains mid-run) replays exactly.
"""

import itertools

from repro.core.simulation import run_simulation
from repro.experiments.executor import SweepExecutor
from repro.experiments.fidelity import Fidelity
from repro.experiments.router import mixed_config
from repro.faults.schedule import FaultConfig

FIDELITY = Fidelity.smoke()

FULL_CROSS = list(
    itertools.product(("calendar", "heap"), ("1", "0"), ("1", "0"))
)


def _router_point(think_time=0.0):
    return mixed_config(FIDELITY, "router", think_time)


def _run(monkeypatch, config, scheduler, fastlane, aggregated):
    monkeypatch.setenv("REPRO_KERNEL_SCHED", scheduler)
    monkeypatch.setenv("REPRO_KERNEL_FASTLANE", fastlane)
    monkeypatch.setenv("REPRO_WORKLOAD_AGG", aggregated)
    return run_simulation(config)


def _assert_identical(reference, other):
    assert reference.as_dict() == other.as_dict()
    # Router decomposition fields are not part of the flat dict;
    # "bit-identical" covers the routing decisions themselves too.
    assert (
        reference.router_class_commits == other.router_class_commits
    )
    assert reference.router_class_aborts == other.router_class_aborts
    assert (
        reference.router_class_mean_response
        == other.router_class_mean_response
    )
    assert (
        reference.router_class_algorithms
        == other.router_class_algorithms
    )


def test_router_full_toggle_cross_bit_identical(monkeypatch):
    """The contended mixed-blend point under all 2×2×2 toggles."""
    config = _router_point(think_time=0.0)
    reference = _run(monkeypatch, config, *FULL_CROSS[0])
    assert reference.commits > 0
    assert reference.router_enabled
    # The run exercised the bandit: more than one algorithm class.
    assert len(reference.router_class_commits) > 1
    for combo in FULL_CROSS[1:]:
        _assert_identical(
            reference, _run(monkeypatch, config, *combo)
        )


def test_router_jobs_parity():
    """Parallel sweep execution must not perturb routing decisions."""
    configs = [
        mixed_config(FIDELITY, algorithm, 0.0)
        for algorithm in ("router", "mvcc")
    ]
    serial = SweepExecutor(jobs=1).run_many(configs)
    parallel = SweepExecutor(jobs=2).run_many(configs)
    for one, two in zip(serial, parallel):
        _assert_identical(one, two)


def _faulted_mvcc_config():
    """MVCC under real crashes: every crash calls ``crash_reset``,
    wiping that node's version chains and pending intents mid-run."""
    config = mixed_config(FIDELITY, "mvcc", 1.0)
    return config.with_(
        faults=FaultConfig(
            node_mtbf=15.0,
            node_mttr=0.5,
            execution_timeout=5.0,
            prepare_timeout=1.0,
            decision_timeout=1.0,
            ack_timeout=1.0,
        )
    )


def test_faulted_mvcc_recovers_and_replays(monkeypatch):
    """Crash/recover on an MVCC machine: the run survives version-
    chain wipes (commits continue after recovery) and stays a pure
    function of the seed."""
    config = _faulted_mvcc_config()
    first = _run(monkeypatch, config, "calendar", "1", "1")
    assert first.node_crashes > 0  # crash_reset actually fired
    assert first.commits > 0
    second = _run(monkeypatch, config, "heap", "0", "0")
    assert first.as_dict() == second.as_dict()
    assert first.per_node_downtime == second.per_node_downtime
