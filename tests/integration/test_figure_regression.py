"""Failure-free figures are frozen: fig2/fig10 vs committed goldens.

The fault-injection machinery must be perfectly inert when no
``FaultSchedule`` is attached: every hardening hook gates on
``faults is None`` and falls back to the exact original code path.
These tests pin the smoke-fidelity Figure 2 and Figure 10 sweeps to
goldens captured from the verified tree, bit-identical floats
included — any perturbation of the failure-free simulation (a stray
random draw, an extra kernel event, a reordered callback) shows up
here as a changed number.

If a deliberate behaviour change invalidates the goldens, regenerate
with::

    PYTHONPATH=src python tests/integration/regenerate_goldens.py
"""

import json
from pathlib import Path

import pytest

from repro.experiments.fidelity import Fidelity
from repro.experiments.partitioning import figure10
from repro.experiments.scaling import figure2

GOLDEN_PATH = (
    Path(__file__).parent / "goldens" / "fig2_fig10_smoke.json"
)


def series_payload(series_list):
    return [
        {
            "title": series.title,
            "x_values": list(series.x_values),
            "curves": {
                name: list(values)
                for name, values in series.curves.items()
            },
        }
        for series in series_list
    ]


@pytest.fixture(scope="module")
def goldens():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


class TestFailureFreeFigureRegression:
    def test_fig2_bit_identical_to_golden(self, goldens):
        actual = series_payload(figure2(Fidelity.smoke()))
        assert actual == goldens["fig2"]

    def test_fig10_bit_identical_to_golden(self, goldens):
        actual = series_payload(figure10(Fidelity.smoke()))
        assert actual == goldens["fig10"]
