"""Tests for the replication extension (read-one/write-all).

The paper's §3.1 model supports replicated files but its experiments do
not exercise them; this extension does, and footnote 13's claim about
OPT vs 2PL with replicated data and expensive messages is reproduced in
the `replication` experiment.  These tests pin the mechanics: placement
of copies, access generation, end-to-end execution, and one-copy
serializability.
"""

import pytest

from repro.core.audit import Auditor
from repro.core.config import (
    DatabaseConfig,
    PlacementKind,
    TransactionClassConfig,
    WorkloadConfig,
    paper_default_config,
)
from repro.core.database import Database, PartitionId
from repro.core.simulation import Simulation, run_simulation
from repro.core.workload import Source
from repro.sim.streams import RandomStreams


def replicated_config(algorithm, copies=2, think_time=2.0, **kwargs):
    config = paper_default_config(
        algorithm, think_time=think_time, **kwargs
    ).with_database(copies=copies)
    return config.with_(duration=12.0, warmup=3.0).with_workload(
        num_terminals=32
    )


class TestReplicatedPlacement:
    def test_copies_on_distinct_nodes(self):
        db = Database(DatabaseConfig(copies=2), num_proc_nodes=8)
        for relation in range(8):
            for partition in range(8):
                nodes = db.nodes_of_partition(
                    PartitionId(relation, partition)
                )
                assert len(nodes) == 2
                assert len(set(nodes)) == 2

    def test_load_stays_balanced(self):
        db = Database(DatabaseConfig(copies=2), num_proc_nodes=8)
        counts = [len(db.partitions_at(node)) for node in range(8)]
        assert counts == [16] * 8

    def test_three_copies(self):
        db = Database(
            DatabaseConfig(copies=3, placement_degree=8),
            num_proc_nodes=8,
        )
        nodes = db.nodes_of_partition(PartitionId(0, 0))
        assert len(set(nodes)) == 3

    def test_primary_is_first(self):
        db = Database(DatabaseConfig(copies=2), num_proc_nodes=8)
        partition = PartitionId(2, 3)
        assert (
            db.node_of(partition)
            == db.nodes_of_partition(partition)[0]
        )

    def test_too_many_copies_rejected(self):
        with pytest.raises(ValueError):
            Database(DatabaseConfig(copies=3), num_proc_nodes=2)

    def test_single_copy_unchanged(self):
        db = Database(DatabaseConfig(copies=1), num_proc_nodes=8)
        assert db.nodes_of_partition(PartitionId(0, 0)) == (
            db.node_of(PartitionId(0, 0)),
        )


class TestReplicatedWorkload:
    def make_source(self, copies=2):
        database = Database(
            DatabaseConfig(copies=copies), num_proc_nodes=8
        )
        return Source(
            WorkloadConfig(num_terminals=16), database,
            RandomStreams(5),
        )

    def test_updates_touch_every_copy(self):
        source = self.make_source()
        for terminal in range(4):
            spec = source.generate(terminal)
            writes_per_page = {}
            for cohort in spec.cohorts:
                for access in cohort.accesses:
                    if access.is_update:
                        writes_per_page.setdefault(
                            access.page, set()
                        ).add(cohort.node)
            database = source.database
            for page, nodes in writes_per_page.items():
                assert nodes == set(database.nodes_of_page(page))

    def test_reads_touch_exactly_one_copy(self):
        source = self.make_source()
        spec = source.generate(0)
        reads_per_page = {}
        for cohort in spec.cohorts:
            for access in cohort.accesses:
                if not access.install_only:
                    reads_per_page.setdefault(
                        access.page, []
                    ).append(cohort.node)
        for page, nodes in reads_per_page.items():
            assert len(nodes) == 1
            assert nodes[0] in source.database.nodes_of_page(page)

    def test_install_legs_marked(self):
        source = self.make_source()
        spec = source.generate(0)
        installs = [
            access
            for cohort in spec.cohorts
            for access in cohort.accesses
            if access.install_only
        ]
        updates = [
            access
            for cohort in spec.cohorts
            for access in cohort.accesses
            if access.is_update and not access.install_only
        ]
        # Every genuine update produces exactly one install leg
        # (copies=2), and install legs are writes.
        assert len(installs) == len(updates)
        assert all(access.is_update for access in installs)

    def test_read_counts_unchanged_by_replication(self):
        """Read-one: the number of page *reads* (hence disk reads)
        must not grow with the replication factor."""
        single = self.make_source(copies=1).generate(3)
        double = self.make_source(copies=2).generate(3)
        assert single.num_reads == double.num_reads


class TestReplicatedExecution:
    @pytest.mark.parametrize("algorithm", ["2pl", "ww", "bto", "opt"])
    def test_commits_and_one_copy_serializability(self, algorithm):
        auditor = Auditor()
        config = replicated_config(algorithm)
        result = Simulation(config, auditor=auditor).run()
        assert result.commits > 5
        cycle = auditor.find_cycle()
        assert cycle is None, f"{algorithm}: {cycle}"

    def test_replication_costs_throughput_under_load(self):
        """Write-all doubles the write work, so a write-heavy load
        commits less with 2 copies than with 1."""
        def run(copies):
            config = paper_default_config(
                "no_dc", think_time=0.0
            ).with_database(copies=copies).with_(
                duration=15.0, warmup=5.0
            )
            return run_simulation(config)

        single = run(1)
        double = run(2)
        assert double.throughput < single.throughput

    def test_more_messages_with_replication(self):
        def run(copies):
            config = replicated_config("2pl", copies=copies)
            return run_simulation(config)

        single = run(1)
        double = run(2)
        assert (
            double.messages_sent / max(1, double.commits)
            > single.messages_sent / max(1, single.commits)
        )
