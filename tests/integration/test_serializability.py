"""Serializability of every algorithm's committed history, under load.

Runs hot, conflict-heavy workloads with the auditor attached and checks
that the version-order serialization graph over committed transactions
is acyclic.  This is the strongest end-to-end correctness statement we
can make about the concurrency control implementations.
"""

import pytest

from repro.core.audit import Auditor
from repro.core.config import (
    PlacementKind,
    TransactionClassConfig,
    WorkloadConfig,
    paper_default_config,
)
from repro.core.simulation import Simulation

ALGORITHMS = ("2pl", "ww", "bto", "opt")


def hot_config(algorithm, **kwargs):
    """A deliberately conflict-heavy configuration: tiny database,
    write-heavy transactions, no think time."""
    config = paper_default_config(
        algorithm, think_time=0.0, pages_per_partition=40, **kwargs
    )
    workload = WorkloadConfig(
        num_terminals=24,
        think_time=0.0,
        classes=(
            TransactionClassConfig(write_probability=0.5),
        ),
    )
    return config.with_(duration=10.0, warmup=0.0, workload=workload)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_committed_history_serializable_8way(algorithm):
    auditor = Auditor()
    simulation = Simulation(hot_config(algorithm), auditor=auditor)
    result = simulation.run()
    assert result.commits > 10  # the check must actually bite
    cycle = auditor.find_cycle()
    assert cycle is None, f"{algorithm} produced cycle {cycle}"


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_committed_history_serializable_1way(algorithm):
    auditor = Auditor()
    simulation = Simulation(
        hot_config(
            algorithm,
            placement=PlacementKind.COLOCATED,
            placement_degree=1,
        ),
        auditor=auditor,
    )
    result = simulation.run()
    assert result.commits > 10
    assert auditor.find_cycle() is None


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_conflicts_actually_occur(algorithm):
    """The serializability tests are only meaningful if the workload
    really conflicts: every algorithm must abort or block sometimes."""
    auditor = Auditor()
    simulation = Simulation(hot_config(algorithm), auditor=auditor)
    result = simulation.run()
    assert result.aborts > 0 or result.blocking_count > 0


def test_auditor_reads_recorded_only_for_commits():
    auditor = Auditor()
    simulation = Simulation(hot_config("opt"), auditor=auditor)
    result = simulation.run()
    assert len(auditor.committed) == result.commits
    assert set(auditor.committed_reads) == set(auditor.committed)
