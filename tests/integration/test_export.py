"""Tests for CSV/JSON export of figures and results."""

import csv
import io
import json

from repro.analysis.series import FigureSeries
from repro.experiments.export import (
    figure_to_csv,
    figure_to_dict,
    figures_to_json,
    results_to_csv,
    write_figures,
)
from tests.core.test_metrics import make_result


def make_series():
    series = FigureSeries(
        title="Export test",
        x_label="think",
        y_label="tput",
        x_values=[0.0, 8.0],
    )
    series.add_curve("2pl", [10.0, 9.0])
    series.add_curve("opt", [None, 6.0])
    return series


class TestFigureCsv:
    def test_header_and_rows(self):
        rows = list(csv.reader(io.StringIO(figure_to_csv(make_series()))))
        assert rows[0] == ["think", "2pl", "opt"]
        assert rows[1] == ["0.0", "10.0", ""]
        assert rows[2] == ["8.0", "9.0", "6.0"]


class TestFigureJson:
    def test_roundtrip(self):
        data = json.loads(figures_to_json([make_series()]))
        assert len(data) == 1
        assert data[0]["title"] == "Export test"
        assert data[0]["curves"]["2pl"] == [10.0, 9.0]
        assert data[0]["curves"]["opt"] == [None, 6.0]

    def test_dict_fields(self):
        payload = figure_to_dict(make_series())
        assert payload["x_values"] == [0.0, 8.0]
        assert payload["y_label"] == "tput"


class TestResultsCsv:
    def test_rows_match_results(self):
        text = results_to_csv(
            [make_result(), make_result(commits=7, throughput=0.7)]
        )
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[1]["commits"] == "7"

    def test_empty_is_empty(self):
        assert results_to_csv([]) == ""


class TestWriteFigures:
    def test_csv_and_json_files(self, tmp_path):
        figures = [make_series(), make_series()]
        written = write_figures(
            figures, tmp_path, "fig2",
            csv_output=True, json_output=True,
        )
        names = sorted(path.name for path in written)
        assert names == ["fig2.2.csv", "fig2.csv", "fig2.json"]
        assert (tmp_path / "fig2.json").exists()

    def test_nothing_requested_nothing_written(self, tmp_path):
        written = write_figures([make_series()], tmp_path, "x")
        assert written == []
