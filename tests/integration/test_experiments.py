"""Tests for the experiment harness (registry, runner, CLI, figures).

Figure generators run at a tiny throwaway fidelity so the whole module
stays fast; the goal is wiring correctness (right curves, right axes,
caching), not statistical quality — EXPERIMENTS.md covers that.
"""

import pytest

from repro.core.config import paper_default_config
from repro.experiments.cli import main
from repro.experiments.fidelity import Fidelity
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.runner import (
    cache_stats,
    clear_cache,
    configure,
    run_config,
    sweep,
)
from repro.experiments import overheads, partitioning, scaling


def tiny_fidelity():
    return Fidelity(
        name="tiny",
        duration=4.0,
        warmup=1.0,
        target_commits=0,
        max_duration=4.0,
        think_times=(0.0, 60.0),
    )


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    configure(jobs=None, cache_dir=None)
    yield
    clear_cache()
    configure(jobs=None, cache_dir=None)


class TestRunnerCache:
    def test_identical_config_runs_once(self, monkeypatch):
        calls = []
        from repro.experiments import executor as executor_module

        original = executor_module.Simulation

        class CountingSimulation(original):
            def __init__(self, config, **kwargs):
                calls.append(config)
                super().__init__(config, **kwargs)

        monkeypatch.setattr(
            executor_module, "Simulation", CountingSimulation
        )
        config = paper_default_config("no_dc", think_time=60.0).with_(
            duration=3.0, warmup=0.0
        ).with_workload(num_terminals=4)
        first = run_config(config)
        second = run_config(config)
        assert len(calls) == 1
        assert first is second

    def test_sweep_covers_grid(self):
        fidelity = tiny_fidelity()

        def factory(algorithm, think_time):
            return fidelity.apply(
                paper_default_config(
                    algorithm, think_time=think_time
                ).with_workload(num_terminals=4)
            )

        results = sweep(("no_dc", "opt"), (0.0, 60.0), factory)
        assert set(results) == {
            ("no_dc", 0.0),
            ("no_dc", 60.0),
            ("opt", 0.0),
            ("opt", 60.0),
        }


class TestFidelity:
    def test_presets_resolve(self):
        assert Fidelity.smoke().name == "smoke"
        assert Fidelity.quick().name == "quick"
        assert Fidelity.bench().name == "bench"
        assert Fidelity.full().name == "full"

    def test_preset_scale_ordering(self):
        """Presets must be ordered by statistical quality."""
        smoke, bench, quick, full = (
            Fidelity.smoke(),
            Fidelity.bench(),
            Fidelity.quick(),
            Fidelity.full(),
        )
        assert smoke.duration < bench.duration <= quick.duration
        assert quick.duration < full.duration
        assert full.target_commits > quick.target_commits
        assert len(full.think_times) > len(quick.think_times)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIDELITY", "smoke")
        assert Fidelity.from_env().name == "smoke"
        monkeypatch.setenv("REPRO_FIDELITY", "bogus")
        with pytest.raises(ValueError):
            Fidelity.from_env()

    def test_apply_stamps_run_controls(self):
        fidelity = tiny_fidelity()
        config = fidelity.apply(paper_default_config("2pl"))
        assert config.duration == 4.0
        assert config.warmup == 1.0

    def test_think_time_override(self):
        fidelity = tiny_fidelity().with_think_times((1.0, 2.0))
        assert fidelity.think_times == (1.0, 2.0)


class TestRegistry:
    def test_all_17_figures_present(self):
        for number in range(2, 18):
            assert f"fig{number}" in EXPERIMENTS

    def test_ablations_present(self):
        for key in (
            "scaling4",
            "startup20k",
            "txn32",
            "seq-vs-par",
            "writeprob",
            "overheads-baseline",
        ):
            assert key in EXPERIMENTS

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_every_experiment_has_a_benchmark(self):
        """Each registered experiment must be regenerable from the
        benchmark suite: some bench_*.py file references its id."""
        import pathlib

        bench_dir = (
            pathlib.Path(__file__).resolve().parents[2]
            / "benchmarks"
        )
        corpus = "\n".join(
            path.read_text(encoding="utf-8")
            for path in bench_dir.glob("bench_*.py")
        )
        missing = [
            experiment_id
            for experiment_id in EXPERIMENTS
            if f'"{experiment_id}"' not in corpus
        ]
        assert missing == []

    def test_lookup_case_insensitive(self):
        assert get_experiment("FIG2").id == "fig2"


class TestFigureGenerators:
    def test_figure2_structure(self):
        figures = scaling.figure2(tiny_fidelity())
        assert len(figures) == 2
        for figure in figures:
            assert set(figure.curves) == {
                "2pl", "bto", "ww", "opt", "no_dc"
            }
            assert figure.x_values == [0.0, 60.0]

    def test_figure5_speedups_positive(self):
        (figure,) = scaling.figure5(tiny_fidelity())
        for curve in figure.curves.values():
            assert all(v is None or v > 0 for v in curve)

    def test_figure10_excludes_baseline(self):
        (figure,) = partitioning.figure10(tiny_fidelity())
        assert "no_dc" not in figure.curves
        assert set(figure.curves) == {"2pl", "bto", "ww", "opt"}

    def test_figure14_x_axis_is_degree(self):
        (figure,) = overheads.figure14(tiny_fidelity())
        assert figure.x_values == [1.0, 2.0, 4.0, 8.0]
        for curve in figure.curves.values():
            # Self-ratio is exactly 1 whenever the tiny run produced
            # any commits at degree 1 (None otherwise).
            assert curve[0] is None or curve[0] == pytest.approx(1.0)

    def test_shared_sweep_is_cached_across_figures(self, monkeypatch):
        calls = []
        from repro.experiments import executor as executor_module

        original = executor_module.Simulation

        class CountingSimulation(original):
            def __init__(self, config, **kwargs):
                calls.append(config)
                super().__init__(config, **kwargs)

        monkeypatch.setattr(
            executor_module, "Simulation", CountingSimulation
        )
        # Force the serial path so the counting patch observes every
        # simulation in this process.
        configure(jobs=1)
        fidelity = tiny_fidelity()
        scaling.figure2(fidelity)
        first_count = len(calls)
        assert first_count > 0
        scaling.figure3(fidelity)  # same underlying sweeps
        assert len(calls) == first_count


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig2" in output
        assert "fig17" in output

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_run_writes_output_file(self, tmp_path, capsys,
                                    monkeypatch):
        monkeypatch.setenv("REPRO_FIDELITY", "smoke")
        # Patch the experiment table with a fast fake to keep CLI
        # tests quick.
        from repro.analysis.series import FigureSeries
        from repro.experiments import cli as cli_module
        from repro.experiments.registry import Experiment

        def fake_run(_fidelity):
            series = FigureSeries(
                title="Fake", x_label="x", y_label="y",
                x_values=[1.0],
            )
            series.add_curve("2pl", [2.0])
            return [series]

        fake = {"fake": Experiment("fake", "a fake figure", fake_run)}
        monkeypatch.setattr(cli_module, "EXPERIMENTS", fake)
        monkeypatch.setattr(
            cli_module, "get_experiment", lambda i: fake[i]
        )
        assert main(["run", "fake", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fake.txt").read_text().startswith("Fake")

    def test_run_chart_and_exports(self, tmp_path, capsys,
                                   monkeypatch):
        from repro.analysis.series import FigureSeries
        from repro.experiments import cli as cli_module
        from repro.experiments.registry import Experiment

        def fake_run(_fidelity):
            series = FigureSeries(
                title="Fake chart", x_label="x", y_label="y",
                x_values=[1.0, 2.0],
            )
            series.add_curve("2pl", [2.0, 3.0])
            return [series]

        fake = {"fake": Experiment("fake", "fake", fake_run)}
        monkeypatch.setattr(cli_module, "EXPERIMENTS", fake)
        monkeypatch.setattr(
            cli_module, "get_experiment", lambda i: fake[i]
        )
        code = main(
            [
                "run", "fake", "--fidelity", "smoke", "--chart",
                "--out", str(tmp_path), "--csv", "--json",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "o=2pl" in output  # the chart legend
        assert (tmp_path / "fake.csv").exists()
        assert (tmp_path / "fake.json").exists()

    def test_simulate_subcommand(self, capsys):
        code = main(
            [
                "simulate", "--algorithm", "bto", "--think", "30",
                "--terminals", "8", "--duration", "5",
                "--warmup", "1",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "cc               bto" in output
        assert "throughput" in output

    def test_simulate_one_way_placement(self, capsys):
        code = main(
            [
                "simulate", "--degree", "1", "--think", "30",
                "--terminals", "4", "--duration", "4",
                "--warmup", "1",
            ]
        )
        assert code == 0
        assert "degree           1" in capsys.readouterr().out
