"""Scheduler and arrival-source toggles must not change one number.

The calendar-queue scheduler (``REPRO_KERNEL_SCHED``) and the
aggregated terminal source (``REPRO_WORKLOAD_AGG``) are pure
performance changes: both preserve the kernel's exact global
``(time, seq)`` dispatch order and the per-stream random draw
sequences, so every reported metric must be *bit-identical* under any
combination of those toggles and the same-time fast lane
(``REPRO_KERNEL_FASTLANE``).

Coverage: the full 2×2×2 toggle cross on the Figure 2 point (the
saturated scaling workload), the scheduler × arrival-source square on
a Figure 10-style restart-heavy point, and the two extreme corners on
a faulted run (crashes + message loss reach the scheduler through
entirely different event paths — recovery timers, retransmissions —
so fault schedules are where an ordering bug would hide).
"""

import itertools

import pytest

from repro.core.simulation import run_simulation
from repro.experiments.fidelity import Fidelity
from repro.experiments.scaling import scaling_config
from repro.faults.schedule import FaultConfig

FIDELITY = Fidelity.smoke()

#: (scheduler, fastlane, aggregated) — the modern default first; every
#: comparison is against this corner.
FULL_CROSS = list(
    itertools.product(("calendar", "heap"), ("1", "0"), ("1", "0"))
)


def _fig02_point():
    config = scaling_config(
        FIDELITY, algorithm="2pl", think_time=0.0, num_nodes=8
    )
    return config.with_(target_commits=0, max_duration=config.duration)


def _fig10_point():
    config = scaling_config(
        FIDELITY, algorithm="opt", think_time=0.0, num_nodes=8
    )
    return config.with_(target_commits=0, max_duration=config.duration)


def _faulted_point():
    config = scaling_config(
        FIDELITY, algorithm="2pl", think_time=8.0, num_nodes=8
    )
    return config.with_(
        target_commits=0,
        max_duration=config.duration,
        faults=FaultConfig(
            node_mtbf=60.0,
            node_mttr=1.0,
            message_loss_probability=0.005,
        ),
    )


def _run(monkeypatch, config, scheduler, fastlane, aggregated):
    monkeypatch.setenv("REPRO_KERNEL_SCHED", scheduler)
    monkeypatch.setenv("REPRO_KERNEL_FASTLANE", fastlane)
    monkeypatch.setenv("REPRO_WORKLOAD_AGG", aggregated)
    return run_simulation(config)


def _assert_identical(reference, other):
    assert reference.as_dict() == other.as_dict()
    # The flat dict omits per-node breakdowns; "bit-identical" means
    # every reported number, so compare those too.
    assert (
        reference.per_node_cpu_utilization
        == other.per_node_cpu_utilization
    )
    assert (
        reference.per_node_disk_utilization
        == other.per_node_disk_utilization
    )
    assert reference.abort_reasons == other.abort_reasons


def test_full_toggle_cross_bit_identical_fig02(monkeypatch):
    config = _fig02_point()
    reference = _run(monkeypatch, config, *FULL_CROSS[0])
    assert reference.commits > 0  # the runs exercise the kernel
    for combo in FULL_CROSS[1:]:
        _assert_identical(
            reference, _run(monkeypatch, config, *combo)
        )


def test_scheduler_source_square_bit_identical_fig10(monkeypatch):
    """Restart-heavy OPT point: schedules are maximally order-
    sensitive, so any divergence in pop order shows up here."""
    config = _fig10_point()
    reference = _run(monkeypatch, config, "calendar", "1", "1")
    assert reference.commits > 0
    for scheduler, aggregated in (
        ("calendar", "0"),
        ("heap", "1"),
        ("heap", "0"),
    ):
        _assert_identical(
            reference,
            _run(monkeypatch, config, scheduler, "1", aggregated),
        )


def test_faulted_run_bit_identical_across_extremes(monkeypatch):
    """Crash/recovery timers and retransmissions flow through the
    scheduler on paths the failure-free tests never touch."""
    config = _faulted_point()
    reference = _run(monkeypatch, config, "calendar", "1", "1")
    legacy = _run(monkeypatch, config, "heap", "0", "0")
    _assert_identical(reference, legacy)
    assert reference.commits > 0


def test_scheduler_kwarg_overrides_environment(monkeypatch):
    """``Environment(scheduler=...)`` wins over the env var."""
    from repro.sim.kernel import Environment

    monkeypatch.setenv("REPRO_KERNEL_SCHED", "heap")
    assert Environment(scheduler="calendar").scheduler == "calendar"
    assert Environment().scheduler == "heap"
    monkeypatch.setenv("REPRO_KERNEL_SCHED", "calendar")
    assert Environment(scheduler="heap").scheduler == "heap"
    assert Environment().scheduler == "calendar"
    monkeypatch.setenv("REPRO_KERNEL_SCHED", "bogus")
    with pytest.raises(ValueError):
        Environment()


def test_aggregated_source_bit_identical_at_paper_scale(monkeypatch):
    """Aggregated vs resident arrivals at the paper's §4.2 machine.

    Think time 8 s keeps most terminals idle between transactions —
    the regime where the two source implementations schedule through
    genuinely different code paths (think timers vs resident
    generator timeouts) yet must consume identical seqs and draws.
    """
    config = scaling_config(
        FIDELITY, algorithm="2pl", think_time=8.0, num_nodes=8
    )
    config = config.with_(
        target_commits=0, max_duration=config.duration
    )
    aggregated = _run(monkeypatch, config, "calendar", "1", "1")
    resident = _run(monkeypatch, config, "calendar", "1", "0")
    _assert_identical(aggregated, resident)
    assert aggregated.commits > 0
