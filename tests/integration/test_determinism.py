"""Determinism and accounting-invariant tests.

The simulator must be a pure function of its configuration (seed
included): identical configs give bit-identical results, across every
algorithm and placement.  On top of that, a set of accounting
invariants must hold for any run — these are checked over a small
randomized family of configurations with hypothesis.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import (
    PlacementKind,
    TransactionClassConfig,
    WorkloadConfig,
    paper_default_config,
)
from repro.core.simulation import run_simulation
from repro.experiments.executor import (
    SweepExecutionError,
    SweepExecutor,
)
from repro.faults.schedule import FaultConfig

ALGORITHMS = ("2pl", "ww", "bto", "opt", "no_dc", "wd", "ir")


def tiny_config(algorithm, seed=7, think_time=1.0, degree=8,
                copies=1, terminals=16, write_probability=0.125):
    placement = (
        PlacementKind.COLOCATED if degree == 1
        else PlacementKind.DECLUSTERED
    )
    config = paper_default_config(
        algorithm,
        think_time=think_time,
        placement=placement,
        placement_degree=degree,
        seed=seed,
    ).with_database(copies=copies)
    workload = WorkloadConfig(
        num_terminals=terminals,
        think_time=think_time,
        classes=(
            TransactionClassConfig(
                write_probability=write_probability
            ),
        ),
    )
    return config.with_(duration=6.0, warmup=2.0, workload=workload)


class TestDeterminism:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_identical_configs_identical_results(self, algorithm):
        first = run_simulation(tiny_config(algorithm))
        second = run_simulation(tiny_config(algorithm))
        assert first.as_dict() == second.as_dict()

    def test_algorithm_changes_only_cc_behaviour(self):
        """Common random numbers: with no contention effects (light
        load), all algorithms see the same workload and produce the
        same commits."""
        counts = {
            algorithm: run_simulation(
                tiny_config(
                    algorithm,
                    think_time=30.0,
                    terminals=4,
                    write_probability=0.0,
                )
            ).commits
            for algorithm in ("2pl", "bto", "opt", "no_dc")
        }
        assert len(set(counts.values())) == 1, counts


def faulty_tiny_config(algorithm, seed=7):
    """A tiny run with real crashes, repairs, and message loss."""
    return tiny_config(algorithm, seed=seed).with_(
        faults=FaultConfig(
            node_mtbf=2.0,
            node_mttr=0.3,
            message_loss_probability=0.02,
            execution_timeout=3.0,
            prepare_timeout=0.5,
            decision_timeout=0.5,
            ack_timeout=0.5,
        )
    )


class TestFaultDeterminism:
    """Fault injection must preserve the pure-function property: a
    faulty run is just as replayable as a failure-free one."""

    @pytest.mark.parametrize("algorithm", ("2pl", "opt"))
    def test_faulty_same_seed_pair_bit_identical(self, algorithm):
        first = run_simulation(faulty_tiny_config(algorithm))
        second = run_simulation(faulty_tiny_config(algorithm))
        assert first.node_crashes > 0  # faults actually fired
        assert first.as_dict() == second.as_dict()
        assert first.per_node_downtime == second.per_node_downtime

    def test_faulty_fastlane_toggle_bit_identical(self, monkeypatch):
        """The kernel's same-time fast lane must not reorder fault
        callbacks relative to simulation callbacks."""
        config = faulty_tiny_config("ww")
        monkeypatch.setenv("REPRO_KERNEL_FASTLANE", "1")
        with_lane = run_simulation(config)
        monkeypatch.setenv("REPRO_KERNEL_FASTLANE", "0")
        without_lane = run_simulation(config)
        assert with_lane.as_dict() == without_lane.as_dict()
        assert (
            with_lane.per_node_downtime
            == without_lane.per_node_downtime
        )


class TestParallelDeterminism:
    """Parallel sweeps must be bit-identical to serial sweeps, and
    worker failures must surface as errors, never as dropped points."""

    def _grid(self):
        return [
            tiny_config(algorithm, think_time=think_time)
            for algorithm in ("2pl", "opt", "no_dc")
            for think_time in (0.0, 1.0)
        ]

    def test_jobs2_equals_jobs1_exactly(self):
        configs = self._grid()
        serial = SweepExecutor(jobs=1).run_many(configs)
        parallel = SweepExecutor(jobs=2).run_many(configs)
        assert [r.as_dict() for r in parallel] == [
            r.as_dict() for r in serial
        ]
        assert [
            r.per_node_cpu_utilization for r in parallel
        ] == [r.per_node_cpu_utilization for r in serial]

    def test_sweep_jobs_equality_via_runner(self):
        from repro.experiments.runner import sweep

        def factory(algorithm, think_time):
            return tiny_config(algorithm, think_time=think_time)

        serial = sweep(("opt", "no_dc"), (0.0, 1.0), factory, jobs=1)
        parallel = sweep(("opt", "no_dc"), (0.0, 1.0), factory, jobs=2)
        assert list(serial) == list(parallel)
        assert {
            key: value.as_dict() for key, value in serial.items()
        } == {
            key: value.as_dict() for key, value in parallel.items()
        }

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_worker_crash_surfaces_as_error(self, jobs):
        """An unknown algorithm passes config validation but fails
        inside the simulation; the failure must carry the config
        rather than silently dropping the grid point."""
        configs = [
            tiny_config("no_dc"),
            tiny_config("no_dc").with_(cc_algorithm="bogus"),
        ]
        with pytest.raises(SweepExecutionError) as excinfo:
            SweepExecutor(jobs=jobs).run_many(configs)
        assert excinfo.value.config.cc_algorithm == "bogus"


@given(
    algorithm=st.sampled_from(ALGORITHMS),
    seed=st.integers(min_value=0, max_value=10_000),
    degree=st.sampled_from([1, 2, 4, 8]),
    copies=st.sampled_from([1, 2]),
    think_time=st.sampled_from([0.0, 1.0, 5.0]),
)
@settings(max_examples=40, deadline=None)
def test_accounting_invariants(
    algorithm, seed, degree, copies, think_time
):
    result = run_simulation(
        tiny_config(
            algorithm,
            seed=seed,
            think_time=think_time,
            degree=degree,
            copies=copies,
        )
    )
    assert result.commits >= 0
    assert result.aborts >= 0
    if result.commits:
        assert result.abort_ratio == pytest.approx(
            result.aborts / result.commits
        )
        assert result.throughput == pytest.approx(
            result.commits / result.measured_duration
        )
        assert result.mean_response_time > 0
    assert 0.0 <= result.avg_disk_utilization <= 1.0
    assert 0.0 <= result.avg_node_cpu_utilization <= 1.0
    assert 0.0 <= result.host_cpu_utilization <= 1.0
    if algorithm in ("opt", "no_dc", "ir"):
        assert result.blocking_count == 0
    if algorithm == "no_dc":
        assert result.aborts == 0
