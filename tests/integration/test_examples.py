"""Smoke tests: every example script must run to completion.

Examples are part of the public surface; these tests run each one in a
subprocess with a tight time budget (the scripts themselves keep their
simulations short).  Scripts that take arguments are exercised with a
cheap setting.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", []),
    ("scaling_study.py", ["96"]),
    ("partitioning_study.py", ["96"]),
    ("custom_workload.py", []),
    ("overheads_study.py", []),
    ("replication_study.py", ["0"]),
]


@pytest.mark.parametrize(
    ("script", "args"), CASES, ids=[case[0] for case in CASES]
)
def test_example_runs(script, args):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=900,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_every_example_file_is_covered():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    covered = {script for script, _args in CASES}
    assert scripts == covered
