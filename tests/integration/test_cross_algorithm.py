"""Cross-algorithm comparison tests: the paper's headline orderings.

These are the repository's acceptance tests for the reproduction: small
but statistically meaningful simulations whose *relative* results must
match the paper's conclusions.  They are heavier than unit tests
(~couple of seconds each) but they are what "reproduced" means.
"""

import pytest

from repro.core.config import PlacementKind, paper_default_config
from repro.core.simulation import run_simulation
from repro.experiments.runner import run_config


def contended(algorithm, think_time=8.0, **kwargs):
    """A moderately contended Table 4 configuration (memoized)."""
    config = paper_default_config(
        algorithm, think_time=think_time, **kwargs
    ).with_(
        duration=45.0,
        warmup=15.0,
        target_commits=250,
        max_duration=400.0,
    )
    return run_config(config)


class TestHeadlineOrderings:
    """Paper §4.2/§4.3: the central performance ordering."""

    def test_throughput_ordering_under_contention(self):
        results = {
            name: contended(name)
            for name in ("no_dc", "2pl", "bto", "ww", "opt")
        }
        tput = {k: r.throughput for k, r in results.items()}
        assert tput["no_dc"] >= tput["2pl"]
        assert tput["2pl"] > tput["ww"]
        assert tput["bto"] > tput["ww"]
        assert tput["ww"] > tput["opt"]

    def test_response_time_ordering_under_contention(self):
        rt = {
            name: contended(name).mean_response_time
            for name in ("no_dc", "2pl", "ww", "opt")
        }
        assert rt["no_dc"] <= rt["2pl"]
        assert rt["2pl"] < rt["ww"] < rt["opt"]

    def test_abort_ratio_ordering(self):
        ratios = {
            name: contended(name).abort_ratio
            for name in ("2pl", "bto", "ww", "opt")
        }
        assert ratios["2pl"] < ratios["bto"]
        assert ratios["bto"] < ratios["ww"]
        assert ratios["ww"] < ratios["opt"]

    def test_no_dc_is_upper_bound(self):
        baseline = contended("no_dc")
        for name in ("2pl", "bto", "ww", "opt"):
            assert contended(name).throughput <= (
                baseline.throughput * 1.05
            )


class TestThrashing:
    """Paper §4.2: 'all four of the algorithms thrash due to data
    contention under high loads.'"""

    @pytest.mark.parametrize("algorithm", ["2pl", "bto", "ww", "opt"])
    def test_throughput_peaks_away_from_saturation(self, algorithm):
        saturated = contended(algorithm, think_time=0.0)
        moderate = contended(algorithm, think_time=8.0)
        assert moderate.throughput >= saturated.throughput * 0.98

    def test_no_dc_does_not_thrash(self):
        saturated = contended("no_dc", think_time=0.0)
        moderate = contended("no_dc", think_time=8.0)
        # NO_DC only loses throughput to the lighter load, never to
        # contention.
        assert saturated.throughput >= moderate.throughput * 0.95


class TestParallelismEffects:
    """Paper §4.3: partitioning helps; 2PL's blocking time shrinks."""

    def test_parallelism_speeds_up_moderate_load(self):
        eight_way = contended("2pl", think_time=8.0)
        one_way = contended(
            "2pl",
            think_time=8.0,
            placement=PlacementKind.COLOCATED,
            placement_degree=1,
        )
        assert (
            eight_way.mean_response_time
            < one_way.mean_response_time
        )

    def test_blocking_time_shrinks_with_parallelism(self):
        """The paper's §4.3 comparison: 1-way blocking ~60% higher."""
        eight_way = contended("2pl", think_time=8.0)
        one_way = contended(
            "2pl",
            think_time=8.0,
            placement=PlacementKind.COLOCATED,
            placement_degree=1,
        )
        assert (
            one_way.mean_blocking_time
            > eight_way.mean_blocking_time * 1.15
        )

    def test_opt_gains_least_from_parallelism(self):
        speedups = {}
        for name in ("2pl", "opt"):
            eight = contended(name, think_time=8.0)
            one = contended(
                name,
                think_time=8.0,
                placement=PlacementKind.COLOCATED,
                placement_degree=1,
            )
            speedups[name] = (
                one.mean_response_time / eight.mean_response_time
            )
        assert speedups["2pl"] > speedups["opt"]
