"""Targeted tests of the abort/restart machinery in the transaction
manager: wound delivery rules, stale requests, restart delays, and the
Snoop's message traffic."""

import pytest

from repro.core.config import (
    PlacementKind,
    TransactionClassConfig,
    WorkloadConfig,
    paper_default_config,
)
from repro.core.simulation import Simulation
from repro.core.transaction import Transaction, TransactionState


def build_simulation(algorithm="2pl", think_time=0.0, **kwargs):
    config = paper_default_config(
        algorithm, think_time=think_time, **kwargs
    ).with_(duration=10.0, warmup=0.0)
    return Simulation(config)


def drain(simulation, until):
    simulation.transaction_manager.start()
    simulation.cc_algorithm.start_global(simulation)
    simulation.env.run(until=until)
    simulation.env.check_crashes()


def make_transaction(simulation, terminal=0):
    source = simulation.source
    spec = source.generate(terminal)
    txn = Transaction(
        terminal, source.class_of(terminal), spec,
        simulation.env.now,
    )
    simulation.cc_algorithm.assign_timestamps(
        txn, simulation.env.now
    )
    txn.begin_attempt()
    txn.abort_event = simulation.env.event()
    return txn


class TestAbortRequestDelivery:
    def test_delivery_marks_and_fires(self):
        simulation = build_simulation()
        txn = make_transaction(simulation)
        manager = simulation.transaction_manager
        manager.request_abort(txn, "wound", from_node=0)
        simulation.env.run(until=1.0)
        assert txn.abort_pending
        assert txn.abort_reason == "wound"
        assert txn.abort_event.fired

    def test_second_commit_phase_wound_ignored(self):
        simulation = build_simulation()
        txn = make_transaction(simulation)
        manager = simulation.transaction_manager
        manager.request_abort(txn, "wound", from_node=0)
        # The transaction enters phase two before the message lands.
        txn.state = TransactionState.COMMITTING
        simulation.env.run(until=1.0)
        assert not txn.abort_pending

    def test_request_against_committing_txn_never_sent(self):
        simulation = build_simulation()
        txn = make_transaction(simulation)
        txn.state = TransactionState.COMMITTING
        manager = simulation.transaction_manager
        sent_before = simulation.network.messages_sent.count
        manager.request_abort(txn, "wound", from_node=0)
        assert simulation.network.messages_sent.count == sent_before

    def test_stale_attempt_request_dropped(self):
        simulation = build_simulation()
        txn = make_transaction(simulation)
        manager = simulation.transaction_manager
        manager.request_abort(txn, "wound", from_node=0)
        # The transaction restarts before the message is delivered.
        txn.begin_attempt()
        txn.abort_event = simulation.env.event()
        simulation.env.run(until=1.0)
        assert not txn.abort_pending

    def test_duplicate_requests_keep_first_reason(self):
        simulation = build_simulation()
        txn = make_transaction(simulation)
        manager = simulation.transaction_manager
        manager.request_abort(txn, "first", from_node=0)
        simulation.env.run(until=0.5)
        manager.request_abort(txn, "second", from_node=1)
        simulation.env.run(until=1.0)
        assert txn.abort_reason == "first"


class TestRestartDelay:
    def test_initial_estimate_used_before_any_commit(self):
        simulation = build_simulation()
        manager = simulation.transaction_manager
        delays = [manager._restart_delay() for _ in range(500)]
        initial = (
            simulation.config.workload.initial_restart_delay
        )
        assert sum(delays) / len(delays) == pytest.approx(
            initial, rel=0.2
        )

    def test_tracks_observed_response_times(self):
        simulation = build_simulation()
        manager = simulation.transaction_manager
        for _ in range(100):
            manager._observed_response.record(5.0)
        delays = [manager._restart_delay() for _ in range(500)]
        assert sum(delays) / len(delays) == pytest.approx(
            5.0, rel=0.2
        )


class TestSnoop:
    def test_snoop_generates_periodic_traffic(self):
        """With everything idle, the only 2PL messages are the Snoop's
        gather rounds: 2 x (N-1) per DetectionInterval."""
        config = paper_default_config("2pl", think_time=0.0).with_(
            duration=10.0, warmup=0.0
        ).with_workload(num_terminals=1, think_time=1000.0)
        simulation = Simulation(config)
        simulation.cc_algorithm.start_global(simulation)
        simulation.env.run(until=5.5)
        # 5 rounds of 14 messages (plus nothing else running).
        assert simulation.network.messages_sent.count == 5 * 14

    def test_snoop_not_started_on_single_node(self):
        config = paper_default_config(
            "2pl",
            think_time=1000.0,
            num_proc_nodes=1,
            placement=PlacementKind.COLOCATED,
        ).with_(duration=5.0, warmup=0.0).with_workload(
            num_terminals=1, think_time=1000.0
        )
        simulation = Simulation(config)
        simulation.cc_algorithm.start_global(simulation)
        simulation.env.run(until=4.0)
        assert simulation.network.messages_sent.count == 0

    def test_global_deadlock_eventually_broken(self):
        """Drive a real cross-node deadlock and verify the Snoop (or
        local detection) resolves it: the system keeps committing."""
        workload = WorkloadConfig(
            num_terminals=16,
            think_time=0.0,
            classes=(
                TransactionClassConfig(write_probability=0.6),
            ),
        )
        config = paper_default_config(
            "2pl", pages_per_partition=30
        ).with_(duration=30.0, warmup=0.0, workload=workload)
        simulation = Simulation(config)
        result = simulation.run()
        assert result.commits > 5
        assert result.aborts > 0  # deadlocks occurred and were broken


class TestCohortProtocol:
    def test_commit_message_count_per_transaction(self):
        """A clean single-transaction run exchanges exactly 6 messages
        per cohort (load, done, prepare, vote, commit, ack) plus Snoop
        traffic-free algorithms send nothing else."""
        config = paper_default_config("no_dc", think_time=1000.0).with_(
            duration=30.0, warmup=0.0
        ).with_workload(num_terminals=1, think_time=1000.0)
        simulation = Simulation(config)
        # Force exactly one transaction by shrinking the horizon below
        # the think time: terminal thinks ~1000s, so instead use zero
        # think for the first submission only.
        # Simpler: run the standard workload with one terminal and no
        # think time for a short window and check divisibility.
        config = paper_default_config("no_dc", think_time=0.0).with_(
            duration=3.0, warmup=0.0
        ).with_workload(num_terminals=1)
        simulation = Simulation(config)
        result = simulation.run()
        assert result.commits >= 1
        # 8 cohorts x 6 messages per committed transaction; allow the
        # final in-flight transaction's partial traffic.
        expected_min = result.commits * 8 * 6
        assert result.messages_sent >= expected_min
        assert result.messages_sent <= expected_min + 8 * 6

    def test_blocking_recorded_only_when_waiting(self):
        result = Simulation(
            paper_default_config("no_dc", think_time=0.0).with_(
                duration=5.0, warmup=0.0
            )
        ).run()
        assert result.blocking_count == 0
