"""Tests for the wound-wait node manager."""

import pytest

from repro.cc.base import RequestResult
from repro.cc.wound_wait import WoundWait, WoundWaitNodeManager
from repro.core.transaction import TransactionState

from tests.cc.conftest import page


@pytest.fixture
def manager(context):
    return WoundWaitNodeManager(0, context)


def cohort_of(txn):
    return txn.cohorts[0]


class TestWounding:
    def test_older_wounds_younger_holder(self, manager, new_txn,
                                         aborts):
        young = new_txn(1.0)
        old = new_txn(0.0)
        manager.read_request(cohort_of(young), page(1))
        manager.write_request(cohort_of(young), page(1))
        response = manager.read_request(cohort_of(old), page(1))
        assert response.result is RequestResult.BLOCKED
        assert aborts.victims == [young]
        assert aborts.requests[0][1] == "wound"

    def test_younger_waits_for_older(self, manager, new_txn, aborts):
        old = new_txn(0.0)
        young = new_txn(1.0)
        manager.read_request(cohort_of(old), page(1))
        manager.write_request(cohort_of(old), page(1))
        response = manager.read_request(cohort_of(young), page(1))
        assert response.result is RequestResult.BLOCKED
        assert aborts.requests == []

    def test_wound_skipped_in_second_commit_phase(self, manager,
                                                  new_txn, aborts):
        young = new_txn(1.0)
        old = new_txn(0.0)
        manager.read_request(cohort_of(young), page(1))
        manager.write_request(cohort_of(young), page(1))
        young.state = TransactionState.COMMITTING
        response = manager.read_request(cohort_of(old), page(1))
        assert response.result is RequestResult.BLOCKED
        assert aborts.requests == []  # non-fatal wound, just wait

    def test_wounds_all_younger_in_conflict_set(self, manager,
                                                new_txn, aborts):
        young_a = new_txn(1.0)
        young_b = new_txn(2.0)
        old = new_txn(0.0)
        manager.read_request(cohort_of(young_a), page(1))
        manager.read_request(cohort_of(young_b), page(1))
        response = manager.write_request(cohort_of(young_a), page(1))
        # young_a (older than young_b) wounds young_b.
        assert response.result is RequestResult.BLOCKED
        assert aborts.victims == [young_b]
        aborts.requests.clear()
        response = manager.read_request(cohort_of(old), page(1))
        assert response.result is RequestResult.BLOCKED
        # old's shared request conflicts only with the queued upgrade
        # (the shared holders are compatible): it wounds young_a.
        assert aborts.victims == [young_a]

    def test_no_wound_on_compatible_access(self, manager, new_txn,
                                           aborts):
        young = new_txn(1.0)
        old = new_txn(0.0)
        manager.read_request(cohort_of(young), page(1))
        response = manager.read_request(cohort_of(old), page(1))
        assert response.result is RequestResult.GRANTED
        assert aborts.requests == []

    def test_upgrades_do_not_jump_queue(self, manager):
        assert manager.upgrades_jump_queue is False


class TestDeadlockFreedom:
    def test_upgrade_collision_resolved_by_wound(self, manager,
                                                 new_txn, aborts):
        """Two readers both upgrading: the younger is wounded, so the
        classic upgrade deadlock cannot persist."""
        old = new_txn(0.0)
        young = new_txn(1.0)
        manager.read_request(cohort_of(old), page(1))
        manager.read_request(cohort_of(young), page(1))
        first = manager.write_request(cohort_of(old), page(1))
        assert first.result is RequestResult.BLOCKED
        assert aborts.victims == [young]

    def test_queue_ahead_wound(self, manager, new_txn, aborts):
        """An upgrade queued behind a younger plain waiter wounds it."""
        holder = new_txn(0.0)
        young_writer = new_txn(2.0)
        upgrader = new_txn(1.0)
        manager.read_request(cohort_of(holder), page(1))
        manager.read_request(cohort_of(upgrader), page(1))
        manager.write_request(cohort_of(young_writer), page(1))
        aborts.requests.clear()
        manager.write_request(cohort_of(upgrader), page(1))
        assert young_writer in aborts.victims


class TestTimestampPolicy:
    def test_restart_keeps_original_timestamp(self, new_txn):
        algorithm = WoundWait()
        txn = new_txn()
        txn.startup_timestamp = None
        txn.timestamp = None
        algorithm.assign_timestamps(txn, 1.0)
        original = txn.timestamp
        algorithm.assign_timestamps(txn, 50.0)
        assert txn.timestamp == original

    def test_name(self):
        assert WoundWait.name == "ww"
