"""Tests for the 2PL node manager (blocking + deadlock detection)."""

import pytest

from repro.cc.base import RequestResult
from repro.cc.two_phase_locking import (
    TwoPhaseLocking,
    TwoPhaseLockingNodeManager,
)

from tests.cc.conftest import page


@pytest.fixture
def manager(context):
    return TwoPhaseLockingNodeManager(0, context)


def cohort_of(txn):
    return txn.cohorts[0]


class TestBasicLocking:
    def test_read_granted(self, manager, new_txn):
        response = manager.read_request(
            cohort_of(new_txn()), page(1)
        )
        assert response.result is RequestResult.GRANTED

    def test_conflicting_write_blocks(self, manager, new_txn):
        reader, writer = new_txn(), new_txn()
        manager.read_request(cohort_of(reader), page(1))
        manager.read_request(cohort_of(writer), page(1))
        response = manager.write_request(cohort_of(writer), page(1))
        assert response.result is RequestResult.BLOCKED

    def test_prepare_always_yes(self, manager, new_txn):
        txn = new_txn()
        manager.read_request(cohort_of(txn), page(1))
        assert manager.prepare(cohort_of(txn)) is True

    def test_commit_releases_and_returns_updates(self, env, manager,
                                                 new_txn):
        writer, waiter = new_txn(), new_txn()
        manager.read_request(cohort_of(writer), page(1))
        manager.write_request(cohort_of(writer), page(1))
        response = manager.read_request(cohort_of(waiter), page(1))
        assert response.result is RequestResult.BLOCKED
        installed = manager.commit(cohort_of(writer))
        assert installed == writer.cohorts[0].updated_pages
        env.run()
        assert response.event.fired
        assert response.event.value is RequestResult.GRANTED

    def test_abort_releases_locks(self, manager, new_txn):
        txn = new_txn()
        manager.read_request(cohort_of(txn), page(1))
        manager.abort(cohort_of(txn))
        assert not manager.locks.holds_any(txn)

    def test_abort_idempotent(self, manager, new_txn):
        txn = new_txn()
        manager.read_request(cohort_of(txn), page(1))
        manager.abort(cohort_of(txn))
        manager.abort(cohort_of(txn))


class TestLocalDeadlockDetection:
    def test_upgrade_deadlock_aborts_youngest(self, manager, new_txn,
                                              aborts):
        old, young = new_txn(0.0), new_txn(1.0)
        manager.read_request(cohort_of(old), page(1))
        manager.read_request(cohort_of(young), page(1))
        first = manager.write_request(cohort_of(old), page(1))
        assert first.result is RequestResult.BLOCKED
        assert aborts.requests == []
        second = manager.write_request(cohort_of(young), page(1))
        assert second.result is RequestResult.BLOCKED
        assert aborts.victims == [young]
        assert aborts.requests[0][1] == "local-deadlock"

    def test_cross_page_deadlock_detected(self, manager, new_txn,
                                          aborts):
        old, young = new_txn(0.0), new_txn(1.0)
        manager.read_request(cohort_of(old), page(1))
        manager.write_request(cohort_of(old), page(1))
        manager.read_request(cohort_of(young), page(2))
        manager.write_request(cohort_of(young), page(2))
        blocked = manager.read_request(cohort_of(old), page(2))
        assert blocked.result is RequestResult.BLOCKED
        assert aborts.requests == []  # no cycle yet
        blocked = manager.read_request(cohort_of(young), page(1))
        assert blocked.result is RequestResult.BLOCKED
        assert aborts.victims == [young]

    def test_no_false_positive_on_simple_wait(self, manager, new_txn,
                                              aborts):
        a, b = new_txn(0.0), new_txn(1.0)
        manager.read_request(cohort_of(a), page(1))
        manager.write_request(cohort_of(a), page(1))
        response = manager.read_request(cohort_of(b), page(1))
        assert response.result is RequestResult.BLOCKED
        assert aborts.requests == []


class TestWaitsForExport:
    def test_edges_exposed_for_snoop(self, manager, new_txn):
        a, b = new_txn(), new_txn()
        manager.read_request(cohort_of(a), page(1))
        manager.write_request(cohort_of(a), page(1))
        manager.read_request(cohort_of(b), page(1))
        assert (b, a) in manager.waits_for_edges()


class TestAlgorithmFactory:
    def test_name(self):
        assert TwoPhaseLocking.name == "2pl"

    def test_timestamps_persist_across_restart(self, env, new_txn):
        algorithm = TwoPhaseLocking()
        txn = new_txn()
        txn.startup_timestamp = None
        txn.timestamp = None
        algorithm.assign_timestamps(txn, 5.0)
        first = txn.startup_timestamp
        algorithm.assign_timestamps(txn, 9.0)
        assert txn.startup_timestamp == first
        assert txn.timestamp == first

    def test_node_manager_factory(self, context):
        algorithm = TwoPhaseLocking()
        manager = algorithm.make_node_manager(3, context)
        assert isinstance(manager, TwoPhaseLockingNodeManager)
        assert manager.node_id == 3
