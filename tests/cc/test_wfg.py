"""Tests for waits-for-graph cycle detection and victim selection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.wfg import (
    break_all_deadlocks,
    build_adjacency,
    find_cycle_from,
    youngest,
)


class FakeTxn:
    """Stand-in transaction with just a startup timestamp."""

    def __init__(self, stamp):
        self.startup_timestamp = (float(stamp), stamp)
        self.stamp = stamp
        self.tid = stamp

    def __repr__(self):
        return f"T{self.stamp}"


def txns(count):
    return [FakeTxn(index) for index in range(count)]


class TestFindCycle:
    def test_no_cycle(self):
        a, b, c = txns(3)
        adjacency = build_adjacency([(a, b), (b, c)])
        assert find_cycle_from(a, adjacency) is None

    def test_two_cycle(self):
        a, b = txns(2)
        adjacency = build_adjacency([(a, b), (b, a)])
        cycle = find_cycle_from(a, adjacency)
        assert cycle is not None
        assert set(cycle) == {a, b}

    def test_self_loop(self):
        (a,) = txns(1)
        adjacency = build_adjacency([(a, a)])
        cycle = find_cycle_from(a, adjacency)
        assert cycle == [a]

    def test_long_cycle(self):
        nodes = txns(6)
        edges = [
            (nodes[i], nodes[(i + 1) % 6]) for i in range(6)
        ]
        cycle = find_cycle_from(nodes[0], build_adjacency(edges))
        assert set(cycle) == set(nodes)

    def test_cycle_not_through_start_is_ignored(self):
        a, b, c = txns(3)
        # b <-> c cycle, a only points in.
        adjacency = build_adjacency([(a, b), (b, c), (c, b)])
        assert find_cycle_from(a, adjacency) is None

    def test_duplicate_edges_deduplicated(self):
        a, b = txns(2)
        adjacency = build_adjacency([(a, b), (a, b)])
        assert adjacency[a] == [b]


class TestYoungest:
    def test_picks_most_recent_startup(self):
        a, b, c = txns(3)
        assert youngest([a, c, b]) is c

    def test_single_member(self):
        (a,) = txns(1)
        assert youngest([a]) is a

    def test_equal_timestamps_break_on_tid(self):
        """Unstamped members all compare as (0.0, 0): the victim must
        be chosen by transaction id, not by iteration order."""
        a, b, c = txns(3)
        for member in (a, b, c):
            member.startup_timestamp = None
        a.tid, b.tid, c.tid = 10, 30, 20
        # Same set in any member order: always the highest tid.
        assert youngest([a, b, c]) is b
        assert youngest([c, b, a]) is b
        assert youngest([b, a, c]) is b


class TestBreakAllDeadlocks:
    def test_acyclic_graph_no_victims(self):
        a, b, c = txns(3)
        assert break_all_deadlocks([(a, b), (b, c)]) == []

    def test_single_cycle_aborts_youngest(self):
        a, b = txns(2)
        victims = break_all_deadlocks([(a, b), (b, a)])
        assert victims == [b]

    def test_two_disjoint_cycles_two_victims(self):
        a, b, c, d = txns(4)
        victims = break_all_deadlocks(
            [(a, b), (b, a), (c, d), (d, c)]
        )
        assert set(victims) == {b, d}

    def test_overlapping_cycles_may_share_victim(self):
        a, b, c = txns(3)
        # a -> b -> a and a -> c -> a: killing c and b (youngest of
        # each found cycle) or just enough to go acyclic.
        edges = [(a, b), (b, a), (a, c), (c, a)]
        victims = break_all_deadlocks(edges)
        survivors = {a, b, c} - set(victims)
        # The result must be acyclic: verify by re-running.
        remaining = [
            (x, y)
            for x, y in edges
            if x in survivors and y in survivors
        ]
        assert break_all_deadlocks(remaining) == []

    def test_victims_never_include_unrelated_transactions(self):
        a, b, c = txns(3)
        victims = break_all_deadlocks([(a, b), (b, a), (b, c)])
        assert c not in victims


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=7),
        ),
        max_size=30,
    )
)
@settings(max_examples=100, deadline=None)
def test_property_break_all_leaves_acyclic(pairs):
    nodes = txns(8)
    edges = [(nodes[i], nodes[j]) for i, j in pairs]
    victims = set(break_all_deadlocks(edges))
    remaining = [
        (x, y)
        for x, y in edges
        if x not in victims and y not in victims
    ]
    assert break_all_deadlocks(remaining) == []
