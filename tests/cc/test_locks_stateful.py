"""Stateful property testing of the lock table (hypothesis).

Random interleavings of acquire/release operations, with the lock
table's core invariants checked after every step:

* an exclusive holder is always alone on its page;
* a transaction never both holds and queues a non-upgrade request on
  the same page;
* every blocked request's event fires at most once, and only with
  GRANTED (the table itself never rejects);
* after releasing everything, the table is empty.
"""

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.cc.locks import LockManager, LockMode
from repro.core.database import PageId
from repro.sim.kernel import Environment
from tests.cc.conftest import make_transaction


class LockTableMachine(RuleBasedStateMachine):
    transactions = Bundle("transactions")

    @initialize()
    def setup(self):
        self.env = Environment()
        self.locks = LockManager(self.env, upgrades_jump_queue=True)
        self.pages = [PageId(0, 0, index) for index in range(4)]
        self.grant_log = []

    @rule(target=transactions)
    def new_transaction(self):
        return make_transaction(self.env)

    @rule(
        txn=transactions,
        page_index=st.integers(min_value=0, max_value=3),
        exclusive=st.booleans(),
    )
    def acquire(self, txn, page_index, exclusive):
        if self.locks.is_waiting(txn):
            # Contract: a cohort blocks on its pending request; it
            # cannot issue another until that one resolves.
            return
        mode = (
            LockMode.EXCLUSIVE if exclusive else LockMode.SHARED
        )
        cohort = txn.cohorts[0]
        granted, request, _conflicts = self.locks.acquire(
            cohort, self.pages[page_index], mode
        )
        if not granted:
            log = self.grant_log

            def watch(request=request):
                value = yield request.event
                log.append((request, value))

            self.env.process(watch())

    @rule(txn=transactions)
    def release(self, txn):
        self.locks.release_all(txn)
        self.env.run()

    @invariant()
    def table_consistent(self):
        if hasattr(self, "locks"):
            self.env.run()
            self.locks.assert_consistent()

    @invariant()
    def grants_unique_per_request(self):
        if not hasattr(self, "grant_log"):
            return
        requests = [id(request) for request, _value in self.grant_log]
        assert len(requests) == len(set(requests))

    def teardown(self):
        if not hasattr(self, "locks"):
            return
        # Release everything: the table must drain completely.
        seen = set()
        for request, _value in self.grant_log:
            seen.add(request.transaction)
        for txn in list(self.locks._held) + list(
            self.locks._waiting
        ):
            seen.add(txn)
        for txn in seen:
            self.locks.release_all(txn)
        self.env.run()
        assert self.locks._table == {}


TestLockTableStateful = LockTableMachine.TestCase
TestLockTableStateful.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
