"""Tests for distributed optimistic certification."""

import pytest

from repro.cc.base import RequestResult
from repro.cc.optimistic import (
    DistributedCertification,
    OptimisticNodeManager,
)
from repro.core.transaction import make_timestamp

from tests.cc.conftest import page


@pytest.fixture
def manager(context):
    return OptimisticNodeManager(0, context)


def cohort_of(txn):
    return txn.cohorts[0]


def setup_cohort(manager, txn):
    manager.register_cohort(cohort_of(txn))
    return cohort_of(txn)


def certify(manager, txn, now=10.0):
    txn.commit_timestamp = make_timestamp(now)
    return manager.prepare(cohort_of(txn))


class TestAccess:
    def test_reads_always_granted(self, manager, new_txn):
        cohort = setup_cohort(manager, new_txn())
        assert (
            manager.read_request(cohort, page(1)).result
            is RequestResult.GRANTED
        )

    def test_writes_always_granted(self, manager, new_txn):
        cohort = setup_cohort(manager, new_txn())
        assert (
            manager.write_request(cohort, page(1)).result
            is RequestResult.GRANTED
        )


class TestCertification:
    def test_unchallenged_transaction_certifies(self, manager,
                                                new_txn):
        txn = new_txn()
        cohort = setup_cohort(manager, txn)
        manager.read_request(cohort, page(1))
        manager.write_request(cohort, page(1))
        assert certify(manager, txn) is True

    def test_read_fails_if_version_changed(self, manager, new_txn):
        reader = new_txn()
        reader_cohort = setup_cohort(manager, reader)
        manager.read_request(reader_cohort, page(1))
        # A writer sneaks in, certifies and commits.
        writer = new_txn()
        writer_cohort = setup_cohort(manager, writer)
        manager.write_request(writer_cohort, page(1))
        assert certify(manager, writer, now=5.0) is True
        manager.commit(writer_cohort)
        assert certify(manager, reader, now=6.0) is False

    def test_read_fails_against_pending_certified_write(
        self, manager, new_txn
    ):
        writer = new_txn()
        writer_cohort = setup_cohort(manager, writer)
        manager.write_request(writer_cohort, page(1))
        assert certify(manager, writer, now=5.0) is True
        # Writer has certified but not yet committed: a reader of the
        # same page must not certify.
        reader = new_txn()
        reader_cohort = setup_cohort(manager, reader)
        manager.read_request(reader_cohort, page(1))
        assert certify(manager, reader, now=6.0) is False

    def test_read_ok_after_pending_writer_aborts(self, manager,
                                                 new_txn):
        writer = new_txn()
        writer_cohort = setup_cohort(manager, writer)
        manager.write_request(writer_cohort, page(1))
        assert certify(manager, writer, now=5.0) is True
        manager.abort(writer_cohort)
        reader = new_txn()
        reader_cohort = setup_cohort(manager, reader)
        manager.read_request(reader_cohort, page(1))
        assert certify(manager, reader, now=6.0) is True

    def test_write_fails_if_later_read_committed(self, manager,
                                                 new_txn):
        reader = new_txn()
        reader_cohort = setup_cohort(manager, reader)
        manager.read_request(reader_cohort, page(1))
        assert certify(manager, reader, now=9.0) is True
        manager.commit(reader_cohort)  # rts(page) = ts(9.0)
        writer = new_txn()
        writer_cohort = setup_cohort(manager, writer)
        manager.write_request(writer_cohort, page(1))
        # Writer's certification timestamp is *earlier* than the
        # committed read: certification must fail.
        writer.commit_timestamp = make_timestamp(5.0)
        # make_timestamp sequences are monotone; build an older stamp
        # directly to force the comparison.
        writer.commit_timestamp = (5.0, -1)
        assert manager.prepare(cohort_of(writer)) is False

    def test_write_fails_against_pending_later_read(self, manager,
                                                    new_txn):
        reader = new_txn()
        reader_cohort = setup_cohort(manager, reader)
        manager.read_request(reader_cohort, page(1))
        reader.commit_timestamp = (9.0, 100)
        assert manager.prepare(reader_cohort) is True  # pending
        writer = new_txn()
        writer_cohort = setup_cohort(manager, writer)
        manager.write_request(writer_cohort, page(1))
        writer.commit_timestamp = (5.0, 99)
        assert manager.prepare(writer_cohort) is False

    def test_write_ok_against_pending_earlier_read(self, manager,
                                                   new_txn):
        reader = new_txn()
        reader_cohort = setup_cohort(manager, reader)
        manager.read_request(reader_cohort, page(1))
        reader.commit_timestamp = (5.0, 99)
        assert manager.prepare(reader_cohort) is True
        writer = new_txn()
        writer_cohort = setup_cohort(manager, writer)
        manager.write_request(writer_cohort, page(1))
        writer.commit_timestamp = (9.0, 100)
        assert manager.prepare(writer_cohort) is True


class TestInstall:
    def test_commit_advances_timestamps(self, manager, new_txn):
        txn = new_txn()
        cohort = setup_cohort(manager, txn)
        manager.read_request(cohort, page(1))
        manager.write_request(cohort, page(2))
        assert certify(manager, txn, now=7.0)
        installed = manager.commit(cohort)
        assert installed == cohort.updated_pages
        rts, _ = manager.page_timestamps(page(1))
        _, wts = manager.page_timestamps(page(2))
        assert rts == txn.commit_timestamp
        assert wts == txn.commit_timestamp

    def test_commit_clears_pending(self, manager, new_txn):
        first = new_txn()
        first_cohort = setup_cohort(manager, first)
        manager.write_request(first_cohort, page(1))
        assert certify(manager, first, now=5.0)
        manager.commit(first_cohort)
        # A later reader sees no pending write (only the version
        # check applies).
        reader = new_txn()
        reader_cohort = setup_cohort(manager, reader)
        manager.read_request(reader_cohort, page(1))
        assert certify(manager, reader, now=8.0) is True

    def test_abort_without_certification_safe(self, manager, new_txn):
        txn = new_txn()
        cohort = setup_cohort(manager, txn)
        manager.read_request(cohort, page(1))
        manager.abort(cohort)
        manager.abort(cohort)  # idempotent


class TestAlgorithm:
    def test_name(self):
        assert DistributedCertification.name == "opt"

    def test_commit_timestamp_minted_fresh(self, new_txn):
        algorithm = DistributedCertification()
        txn = new_txn()
        first = algorithm.assign_commit_timestamp(txn, 4.0)
        second = algorithm.assign_commit_timestamp(txn, 4.0)
        assert second > first
        assert txn.commit_timestamp == second
