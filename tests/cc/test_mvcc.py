"""Tests for MVCC snapshot isolation (first-committer-wins)."""

import pytest

from repro.cc.base import RequestResult
from repro.cc.mvcc import MultiVersionCC, MvccNodeManager
from repro.core.transaction import make_timestamp

from tests.cc.conftest import page


@pytest.fixture
def manager(context):
    return MvccNodeManager(0, context)


def cohort_of(txn):
    return txn.cohorts[0]


def setup_cohort(manager, txn):
    manager.register_cohort(cohort_of(txn))
    return cohort_of(txn)


def certify(manager, txn, now=10.0):
    txn.commit_timestamp = make_timestamp(now)
    return manager.prepare(cohort_of(txn))


def committed_write(manager, new_txn, target, now=5.0,
                    snapshot_time=None):
    """Commit one writer of ``target``; returns its commit stamp."""
    writer = new_txn(timestamp_time=snapshot_time)
    cohort = setup_cohort(manager, writer)
    assert (
        manager.write_request(cohort, target).result
        is RequestResult.GRANTED
    )
    assert certify(manager, writer, now=now) is True
    manager.commit(cohort)
    return writer.commit_timestamp


class TestSnapshotReads:
    def test_reads_always_granted(self, manager, new_txn):
        cohort = setup_cohort(manager, new_txn())
        assert (
            manager.read_request(cohort, page(1)).result
            is RequestResult.GRANTED
        )

    def test_read_granted_even_after_newer_commit(self, manager,
                                                  new_txn):
        """The defining MVCC property: a newer committed version does
        not block or kill a snapshot reader — it reads the older
        version."""
        reader = new_txn(timestamp_time=1.0)
        reader_cohort = setup_cohort(manager, reader)
        committed_write(manager, new_txn, page(1), now=5.0)
        assert (
            manager.read_request(reader_cohort, page(1)).result
            is RequestResult.GRANTED
        )

    def test_read_only_certifies_trivially(self, manager, new_txn):
        reader = new_txn(timestamp_time=1.0)
        cohort = setup_cohort(manager, reader)
        manager.read_request(cohort, page(1))
        committed_write(manager, new_txn, page(1), now=5.0)
        # No writes buffered: nothing to validate, vote is yes.
        assert certify(manager, reader, now=6.0) is True


class TestFirstCommitterWins:
    def test_write_rejected_when_snapshot_stale(self, manager,
                                                new_txn):
        committed_write(manager, new_txn, page(1), now=5.0)
        late = new_txn(timestamp_time=1.0)  # snapshot predates commit
        cohort = setup_cohort(manager, late)
        assert (
            manager.write_request(cohort, page(1)).result
            is RequestResult.REJECTED
        )

    def test_write_granted_on_fresh_snapshot(self, manager, new_txn):
        committed_write(manager, new_txn, page(1), now=5.0)
        fresh = new_txn(timestamp_time=9.0)
        cohort = setup_cohort(manager, fresh)
        assert (
            manager.write_request(cohort, page(1)).result
            is RequestResult.GRANTED
        )

    def test_prepare_fails_if_commit_raced_in(self, manager, new_txn):
        """Early check passed, but a first committer landed before
        certification: the vote must be no."""
        racer = new_txn(timestamp_time=1.0)
        racer_cohort = setup_cohort(manager, racer)
        assert (
            manager.write_request(racer_cohort, page(1)).result
            is RequestResult.GRANTED
        )
        committed_write(manager, new_txn, page(1), now=5.0)
        assert certify(manager, racer, now=6.0) is False

    def test_prepare_fails_against_pending_intent(self, manager,
                                                  new_txn):
        first = new_txn(timestamp_time=1.0)
        first_cohort = setup_cohort(manager, first)
        manager.write_request(first_cohort, page(1))
        assert certify(manager, first, now=5.0) is True  # pending
        second = new_txn(timestamp_time=2.0)
        second_cohort = setup_cohort(manager, second)
        manager.write_request(second_cohort, page(1))
        assert certify(manager, second, now=6.0) is False

    def test_prepare_ok_after_pending_writer_aborts(self, manager,
                                                    new_txn):
        first = new_txn(timestamp_time=1.0)
        first_cohort = setup_cohort(manager, first)
        manager.write_request(first_cohort, page(1))
        assert certify(manager, first, now=5.0) is True
        manager.abort(first_cohort)
        assert manager.pending_intents(page(1)) == 0
        second = new_txn(timestamp_time=2.0)
        second_cohort = setup_cohort(manager, second)
        manager.write_request(second_cohort, page(1))
        assert certify(manager, second, now=6.0) is True

    def test_disjoint_writers_both_certify(self, manager, new_txn):
        first = new_txn(timestamp_time=1.0)
        first_cohort = setup_cohort(manager, first)
        manager.write_request(first_cohort, page(1))
        second = new_txn(timestamp_time=1.0)
        second_cohort = setup_cohort(manager, second)
        manager.write_request(second_cohort, page(2))
        assert certify(manager, first, now=5.0) is True
        assert certify(manager, second, now=6.0) is True


class TestVersionChains:
    def test_commit_installs_versions(self, manager, new_txn):
        stamp = committed_write(manager, new_txn, page(1), now=5.0)
        assert manager.version_chain(page(1)) == (stamp,)
        assert manager.store.latest(page(1)) == stamp

    def test_out_of_order_installs_stay_sorted(self, manager, new_txn):
        late = new_txn(timestamp_time=1.0)
        late_cohort = setup_cohort(manager, late)
        manager.write_request(late_cohort, page(1))
        assert certify(manager, late, now=9.0) is True
        early = new_txn(timestamp_time=1.0)
        early_cohort = setup_cohort(manager, early)
        manager.write_request(early_cohort, page(2))
        assert certify(manager, early, now=5.0) is True
        # Phase-two decisions arrive out of timestamp order.
        manager.commit(late_cohort)
        manager.commit(early_cohort)
        chain_1 = manager.version_chain(page(1))
        chain_2 = manager.version_chain(page(2))
        assert chain_1 == (late.commit_timestamp,)
        assert chain_2 == (early.commit_timestamp,)

    def test_chains_are_bounded(self, manager, new_txn):
        keep = manager.store.max_versions
        stamps = [
            committed_write(
                manager, new_txn, page(1),
                now=float(i + 1), snapshot_time=float(i),
            )
            for i in range(keep + 3)
        ]
        chain = manager.version_chain(page(1))
        assert len(chain) == keep
        assert chain == tuple(stamps[-keep:])

    def test_abort_is_idempotent(self, manager, new_txn):
        txn = new_txn()
        cohort = setup_cohort(manager, txn)
        manager.write_request(cohort, page(1))
        manager.abort(cohort)
        manager.abort(cohort)
        assert manager.version_chain(page(1)) == ()


class TestCrashReset:
    def test_crash_reset_wipes_chains_and_intents(self, manager,
                                                  new_txn):
        committed_write(manager, new_txn, page(1), now=5.0)
        pending = new_txn(timestamp_time=6.0)
        pending_cohort = setup_cohort(manager, pending)
        manager.write_request(pending_cohort, page(2))
        assert certify(manager, pending, now=7.0) is True
        manager.crash_reset()
        assert manager.version_chain(page(1)) == ()
        assert manager.pending_intents(page(2)) == 0
        assert len(manager.store) == 0

    def test_post_crash_writes_start_from_zero(self, manager,
                                               new_txn):
        committed_write(manager, new_txn, page(1), now=5.0)
        manager.crash_reset()
        # A snapshot older than the wiped commit can write again: the
        # volatile version bookkeeping restarted from the zero stamp.
        old = new_txn(timestamp_time=1.0)
        cohort = setup_cohort(manager, old)
        assert (
            manager.write_request(cohort, page(1)).result
            is RequestResult.GRANTED
        )
        assert certify(manager, old, now=6.0) is True


class TestAlgorithm:
    def test_name(self):
        assert MultiVersionCC.name == "mvcc"

    def test_fresh_snapshot_per_attempt(self, new_txn):
        algorithm = MultiVersionCC()
        txn = new_txn()
        txn.startup_timestamp = None
        txn.timestamp = None
        algorithm.assign_timestamps(txn, 4.0)
        first_snapshot = txn.timestamp
        assert txn.startup_timestamp == first_snapshot
        algorithm.assign_timestamps(txn, 6.0)
        assert txn.timestamp > first_snapshot
        assert txn.startup_timestamp == first_snapshot

    def test_registry_integration(self, context):
        from repro.cc.registry import make_algorithm

        algorithm = make_algorithm("mvcc")
        manager = algorithm.make_node_manager(0, context)
        assert isinstance(manager, MvccNodeManager)
