"""Tests for the wait-die extension algorithm."""

import pytest

from repro.cc.base import RequestResult
from repro.cc.wait_die import WaitDie, WaitDieNodeManager

from tests.cc.conftest import page


@pytest.fixture
def manager(context):
    return WaitDieNodeManager(0, context)


def cohort_of(txn):
    return txn.cohorts[0]


class TestWaitDieRules:
    def test_older_waits_for_younger_never(self, manager, new_txn):
        """Mirror of wound-wait: older requesters WAIT."""
        young = new_txn(1.0)
        old = new_txn(0.0)
        manager.read_request(cohort_of(young), page(1))
        manager.write_request(cohort_of(young), page(1))
        response = manager.read_request(cohort_of(old), page(1))
        assert response.result is RequestResult.BLOCKED

    def test_younger_dies_on_conflict_with_older(self, manager,
                                                 new_txn, aborts):
        old = new_txn(0.0)
        young = new_txn(1.0)
        manager.read_request(cohort_of(old), page(1))
        manager.write_request(cohort_of(old), page(1))
        response = manager.read_request(cohort_of(young), page(1))
        assert response.result is RequestResult.REJECTED
        # The death is synchronous: no remote abort request needed.
        assert aborts.requests == []

    def test_died_request_not_left_in_queue(self, env, manager,
                                            new_txn):
        old = new_txn(0.0)
        young = new_txn(1.0)
        manager.read_request(cohort_of(old), page(1))
        manager.write_request(cohort_of(old), page(1))
        manager.read_request(cohort_of(young), page(1))  # dies
        assert not manager.locks.is_waiting(young)
        # Held locks release only via the abort protocol, and the old
        # transaction keeps running normally.
        installed = manager.commit(cohort_of(old))
        assert installed == old.cohorts[0].updated_pages

    def test_death_keeps_already_held_locks(self, manager, new_txn):
        """Dying withdraws only the new request; previously granted
        locks stay held until the abort protocol runs."""
        old = new_txn(0.0)
        young = new_txn(1.0)
        manager.read_request(cohort_of(young), page(2))
        manager.read_request(cohort_of(old), page(1))
        manager.write_request(cohort_of(old), page(1))
        response = manager.read_request(cohort_of(young), page(1))
        assert response.result is RequestResult.REJECTED
        assert manager.locks.holds_any(young)  # page 2 still held
        manager.abort(cohort_of(young))
        assert not manager.locks.holds_any(young)

    def test_compatible_access_granted_regardless_of_age(self,
                                                         manager,
                                                         new_txn):
        old = new_txn(0.0)
        young = new_txn(1.0)
        manager.read_request(cohort_of(old), page(1))
        response = manager.read_request(cohort_of(young), page(1))
        assert response.result is RequestResult.GRANTED

    def test_mixed_conflict_set_dies(self, manager, new_txn):
        """If any member of the conflict set is younger, the requester
        dies (it may not wait for a younger transaction)."""
        oldest = new_txn(0.0)
        middle = new_txn(1.0)
        young = new_txn(2.0)
        manager.read_request(cohort_of(oldest), page(1))
        manager.read_request(cohort_of(young), page(1))
        response = manager.write_request(cohort_of(middle), page(1))
        # middle holds nothing on page(1): this is a fresh exclusive
        # request conflicting with both holders; young is younger.
        assert response.result is RequestResult.REJECTED


class TestTimestampPolicy:
    def test_restart_keeps_original_timestamp(self, new_txn):
        algorithm = WaitDie()
        txn = new_txn()
        txn.startup_timestamp = None
        txn.timestamp = None
        algorithm.assign_timestamps(txn, 1.0)
        original = txn.timestamp
        algorithm.assign_timestamps(txn, 50.0)
        assert txn.timestamp == original

    def test_name(self):
        assert WaitDie.name == "wd"
