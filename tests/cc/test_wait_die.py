"""Tests for the wait-die extension algorithm."""

import pytest

from repro.cc.base import RequestResult
from repro.cc.wait_die import WaitDie, WaitDieNodeManager

from tests.cc.conftest import page


@pytest.fixture
def manager(context):
    return WaitDieNodeManager(0, context)


def cohort_of(txn):
    return txn.cohorts[0]


class TestWaitDieRules:
    def test_older_waits_for_younger_never(self, manager, new_txn):
        """Mirror of wound-wait: older requesters WAIT."""
        young = new_txn(1.0)
        old = new_txn(0.0)
        manager.read_request(cohort_of(young), page(1))
        manager.write_request(cohort_of(young), page(1))
        response = manager.read_request(cohort_of(old), page(1))
        assert response.result is RequestResult.BLOCKED

    def test_younger_dies_on_conflict_with_older(self, manager,
                                                 new_txn, aborts):
        old = new_txn(0.0)
        young = new_txn(1.0)
        manager.read_request(cohort_of(old), page(1))
        manager.write_request(cohort_of(old), page(1))
        response = manager.read_request(cohort_of(young), page(1))
        assert response.result is RequestResult.REJECTED
        # The death is synchronous: no remote abort request needed.
        assert aborts.requests == []

    def test_died_request_not_left_in_queue(self, env, manager,
                                            new_txn):
        old = new_txn(0.0)
        young = new_txn(1.0)
        manager.read_request(cohort_of(old), page(1))
        manager.write_request(cohort_of(old), page(1))
        manager.read_request(cohort_of(young), page(1))  # dies
        assert not manager.locks.is_waiting(young)
        # Held locks release only via the abort protocol, and the old
        # transaction keeps running normally.
        installed = manager.commit(cohort_of(old))
        assert installed == old.cohorts[0].updated_pages

    def test_death_keeps_already_held_locks(self, manager, new_txn):
        """Dying withdraws only the new request; previously granted
        locks stay held until the abort protocol runs."""
        old = new_txn(0.0)
        young = new_txn(1.0)
        manager.read_request(cohort_of(young), page(2))
        manager.read_request(cohort_of(old), page(1))
        manager.write_request(cohort_of(old), page(1))
        response = manager.read_request(cohort_of(young), page(1))
        assert response.result is RequestResult.REJECTED
        assert manager.locks.holds_any(young)  # page 2 still held
        manager.abort(cohort_of(young))
        assert not manager.locks.holds_any(young)

    def test_compatible_access_granted_regardless_of_age(self,
                                                         manager,
                                                         new_txn):
        old = new_txn(0.0)
        young = new_txn(1.0)
        manager.read_request(cohort_of(old), page(1))
        response = manager.read_request(cohort_of(young), page(1))
        assert response.result is RequestResult.GRANTED

    def test_mixed_conflict_set_dies(self, manager, new_txn):
        """If any member of the conflict set is younger, the requester
        dies (it may not wait for a younger transaction)."""
        oldest = new_txn(0.0)
        middle = new_txn(1.0)
        young = new_txn(2.0)
        manager.read_request(cohort_of(oldest), page(1))
        manager.read_request(cohort_of(young), page(1))
        response = manager.write_request(cohort_of(middle), page(1))
        # middle holds nothing on page(1): this is a fresh exclusive
        # request conflicting with both holders; young is younger.
        assert response.result is RequestResult.REJECTED


class TestAbortCleanup:
    """Forced-abort cleanup: lock release and waiter wakeup order."""

    def _blocked_waiters(self, env, manager, new_txn):
        """A young exclusive holder with three older blocked readers.

        Arrival order (middle, youngest-of-the-three, oldest) is
        deliberately different from age order so the tests can tell
        FIFO wakeup apart from age-ordered wakeup.
        """
        holder = new_txn(3.0)
        manager.read_request(cohort_of(holder), page(1))
        manager.write_request(cohort_of(holder), page(1))
        waiters = [new_txn(1.0), new_txn(2.0), new_txn(0.0)]
        events = []
        for waiter in waiters:
            response = manager.read_request(
                cohort_of(waiter), page(1)
            )
            assert response.result is RequestResult.BLOCKED
            events.append(response.event)
        return holder, waiters, events

    @staticmethod
    def _record_wakeups(env, events, labels):
        woke = []

        def watcher(event, label):
            outcome = yield event
            woke.append((label, outcome))

        for event, label in zip(events, labels):
            env.process(watcher(event, label))
        # Let the watchers subscribe before anything fires.
        env.run(until=0.5)
        return woke

    def test_holder_abort_wakes_waiters_in_arrival_order(
        self, env, manager, new_txn
    ):
        holder, waiters, events = self._blocked_waiters(
            env, manager, new_txn
        )
        woke = self._record_wakeups(env, events, ["a", "b", "c"])
        manager.abort(cohort_of(holder))
        env.run(until=1.0)
        # FIFO queue order (arrival), not timestamp order.
        assert woke == [
            ("a", RequestResult.GRANTED),
            ("b", RequestResult.GRANTED),
            ("c", RequestResult.GRANTED),
        ]

    def test_release_order_reproducible_across_runs(self, context):
        from repro.cc.base import CCContext
        from repro.sim.kernel import Environment

        def one_run():
            env = Environment()
            ctx = CCContext(
                env,
                request_abort=lambda *args: None,
                detection_interval=1.0,
            )
            manager = WaitDieNodeManager(0, ctx)

            def txn(time):
                from tests.cc.conftest import make_transaction
                from repro.core.transaction import make_timestamp

                transaction = make_transaction(env)
                transaction.startup_timestamp = make_timestamp(time)
                transaction.timestamp = transaction.startup_timestamp
                return transaction

            holder = txn(3.0)
            manager.read_request(cohort_of(holder), page(1))
            manager.write_request(cohort_of(holder), page(1))
            waiters = [txn(1.0), txn(2.0), txn(0.0)]
            woke = []

            def watcher(event, label):
                outcome = yield event
                woke.append((label, outcome))

            for index, waiter in enumerate(waiters):
                response = manager.read_request(
                    cohort_of(waiter), page(1)
                )
                env.process(watcher(response.event, index))
            env.run(until=0.5)
            manager.abort(cohort_of(holder))
            env.run(until=1.0)
            return woke

        assert one_run() == one_run()

    def test_aborted_waiter_is_skipped_on_release(
        self, env, manager, new_txn
    ):
        """A waiter force-aborted while queued must not be granted
        when the holder's locks release; the others still wake."""
        holder, waiters, events = self._blocked_waiters(
            env, manager, new_txn
        )
        woke = self._record_wakeups(env, events, ["a", "b", "c"])
        manager.abort(cohort_of(waiters[1]))  # drop "b" from queue
        assert not manager.locks.is_waiting(waiters[1])
        manager.abort(cohort_of(holder))
        env.run(until=1.0)
        assert woke == [
            ("a", RequestResult.GRANTED),
            ("c", RequestResult.GRANTED),
        ]

    def test_abort_is_idempotent(self, env, manager, new_txn):
        holder, waiters, _events = self._blocked_waiters(
            env, manager, new_txn
        )
        manager.abort(cohort_of(holder))
        manager.abort(cohort_of(holder))
        assert not manager.locks.holds_any(holder)
        # The released page is now shared among the woken readers.
        for waiter in waiters:
            assert manager.locks.holds_any(waiter)

    def test_crash_reset_drops_all_lock_state(
        self, env, manager, new_txn
    ):
        holder, waiters, _events = self._blocked_waiters(
            env, manager, new_txn
        )
        manager.crash_reset()
        assert not manager.locks.holds_any(holder)
        assert manager.waits_for_edges() == []
        # The fresh table grants immediately, even to a young txn.
        fresh = new_txn(9.0)
        response = manager.write_request(cohort_of(fresh), page(1))
        assert response.result is RequestResult.GRANTED


class TestTimestampPolicy:
    def test_restart_keeps_original_timestamp(self, new_txn):
        algorithm = WaitDie()
        txn = new_txn()
        txn.startup_timestamp = None
        txn.timestamp = None
        algorithm.assign_timestamps(txn, 1.0)
        original = txn.timestamp
        algorithm.assign_timestamps(txn, 50.0)
        assert txn.timestamp == original

    def test_name(self):
        assert WaitDie.name == "wd"
