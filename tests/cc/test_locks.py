"""Tests for the page-level lock table."""

import pytest

from repro.cc.base import RequestResult
from repro.cc.locks import LockManager, LockMode

from tests.cc.conftest import page


@pytest.fixture
def locks(env):
    return LockManager(env, upgrades_jump_queue=True)


def cohort_of(txn):
    return txn.cohorts[0]


class TestSharedLocks:
    def test_shared_granted_on_free_page(self, locks, new_txn):
        granted, request, conflicts = locks.acquire(
            cohort_of(new_txn()), page(1), LockMode.SHARED
        )
        assert granted
        assert request is None
        assert conflicts == []

    def test_shared_locks_compatible(self, locks, new_txn):
        locks.acquire(cohort_of(new_txn()), page(1), LockMode.SHARED)
        granted, _, _ = locks.acquire(
            cohort_of(new_txn()), page(1), LockMode.SHARED
        )
        assert granted

    def test_reacquiring_shared_is_noop(self, locks, new_txn):
        txn = new_txn()
        locks.acquire(cohort_of(txn), page(1), LockMode.SHARED)
        granted, _, _ = locks.acquire(
            cohort_of(txn), page(1), LockMode.SHARED
        )
        assert granted

    def test_shared_blocked_by_exclusive_holder(self, locks, new_txn):
        writer, reader = new_txn(), new_txn()
        locks.acquire(cohort_of(writer), page(1), LockMode.EXCLUSIVE)
        granted, request, conflicts = locks.acquire(
            cohort_of(reader), page(1), LockMode.SHARED
        )
        assert not granted
        assert conflicts == [writer]

    def test_shared_queues_behind_waiting_exclusive(self, locks,
                                                    new_txn):
        """FIFO: a reader must not starve a queued writer."""
        holder, writer, reader = new_txn(), new_txn(), new_txn()
        locks.acquire(cohort_of(holder), page(1), LockMode.SHARED)
        locks.acquire(cohort_of(writer), page(1), LockMode.EXCLUSIVE)
        granted, _, conflicts = locks.acquire(
            cohort_of(reader), page(1), LockMode.SHARED
        )
        assert not granted
        assert writer in conflicts


class TestExclusiveLocks:
    def test_exclusive_granted_on_free_page(self, locks, new_txn):
        granted, _, _ = locks.acquire(
            cohort_of(new_txn()), page(1), LockMode.EXCLUSIVE
        )
        assert granted

    def test_exclusive_blocked_by_shared_holder(self, locks, new_txn):
        reader, writer = new_txn(), new_txn()
        locks.acquire(cohort_of(reader), page(1), LockMode.SHARED)
        granted, _, conflicts = locks.acquire(
            cohort_of(writer), page(1), LockMode.EXCLUSIVE
        )
        assert not granted
        assert conflicts == [reader]

    def test_reacquiring_exclusive_is_noop(self, locks, new_txn):
        txn = new_txn()
        locks.acquire(cohort_of(txn), page(1), LockMode.EXCLUSIVE)
        granted, _, _ = locks.acquire(
            cohort_of(txn), page(1), LockMode.EXCLUSIVE
        )
        assert granted


class TestUpgrades:
    def test_sole_holder_upgrades_immediately(self, locks, new_txn):
        txn = new_txn()
        locks.acquire(cohort_of(txn), page(1), LockMode.SHARED)
        granted, _, _ = locks.acquire(
            cohort_of(txn), page(1), LockMode.EXCLUSIVE
        )
        assert granted

    def test_upgrade_waits_for_other_readers(self, locks, new_txn):
        a, b = new_txn(), new_txn()
        locks.acquire(cohort_of(a), page(1), LockMode.SHARED)
        locks.acquire(cohort_of(b), page(1), LockMode.SHARED)
        granted, request, conflicts = locks.acquire(
            cohort_of(a), page(1), LockMode.EXCLUSIVE
        )
        assert not granted
        assert request.is_upgrade
        assert conflicts == [b]

    def test_upgrade_granted_when_other_reader_releases(
        self, env, locks, new_txn
    ):
        a, b = new_txn(), new_txn()
        locks.acquire(cohort_of(a), page(1), LockMode.SHARED)
        locks.acquire(cohort_of(b), page(1), LockMode.SHARED)
        _, request, _ = locks.acquire(
            cohort_of(a), page(1), LockMode.EXCLUSIVE
        )
        results = []

        def waiter():
            value = yield request.event
            results.append(value)

        env.process(waiter())
        locks.release_all(b.cohorts[0].transaction)
        env.run()
        assert results == [RequestResult.GRANTED]

    def test_upgrade_jumps_ahead_of_plain_waiters(self, env, locks,
                                                  new_txn):
        holder, other_reader, writer = new_txn(), new_txn(), new_txn()
        locks.acquire(cohort_of(holder), page(1), LockMode.SHARED)
        locks.acquire(
            cohort_of(other_reader), page(1), LockMode.SHARED
        )
        # Plain exclusive waiter queues first.
        locks.acquire(cohort_of(writer), page(1), LockMode.EXCLUSIVE)
        # Holder's upgrade then jumps ahead of it.
        _, upgrade, _ = locks.acquire(
            cohort_of(holder), page(1), LockMode.EXCLUSIVE
        )
        order = []

        def wait_for(tag, request):
            yield request.event
            order.append(tag)

        env.process(wait_for("upgrade", upgrade))
        locks.release_all(other_reader)
        env.run()
        assert order == ["upgrade"]

    def test_back_queue_policy_keeps_fifo(self, env, new_txn):
        locks = LockManager(env, upgrades_jump_queue=False)
        a, b, writer = new_txn(), new_txn(), new_txn()
        locks.acquire(cohort_of(a), page(1), LockMode.SHARED)
        locks.acquire(cohort_of(b), page(1), LockMode.SHARED)
        _, w_request, _ = locks.acquire(
            cohort_of(writer), page(1), LockMode.EXCLUSIVE
        )
        _, upgrade, conflicts = locks.acquire(
            cohort_of(a), page(1), LockMode.EXCLUSIVE
        )
        # The upgrade queues behind the plain writer: it waits for b
        # (conflicting holder) and the writer ahead of it.
        assert b in conflicts
        assert writer in conflicts


class TestRelease:
    def test_release_grants_next_exclusive(self, env, locks, new_txn):
        a, b = new_txn(), new_txn()
        locks.acquire(cohort_of(a), page(1), LockMode.EXCLUSIVE)
        _, request, _ = locks.acquire(
            cohort_of(b), page(1), LockMode.EXCLUSIVE
        )
        fired = []

        def waiter():
            fired.append((yield request.event))

        env.process(waiter())
        locks.release_all(a)
        env.run()
        assert fired == [RequestResult.GRANTED]
        assert locks.holds_any(b)

    def test_release_grants_shared_batch(self, env, locks, new_txn):
        writer = new_txn()
        readers = [new_txn() for _ in range(3)]
        locks.acquire(cohort_of(writer), page(1), LockMode.EXCLUSIVE)
        events = []
        for reader in readers:
            _, request, _ = locks.acquire(
                cohort_of(reader), page(1), LockMode.SHARED
            )
            events.append(request.event)
        granted = []

        def waiter(index, event):
            yield event
            granted.append(index)

        for index, event in enumerate(events):
            env.process(waiter(index, event))
        locks.release_all(writer)
        env.run()
        assert sorted(granted) == [0, 1, 2]

    def test_release_removes_queued_requests(self, locks, new_txn):
        a, b = new_txn(), new_txn()
        locks.acquire(cohort_of(a), page(1), LockMode.EXCLUSIVE)
        locks.acquire(cohort_of(b), page(1), LockMode.EXCLUSIVE)
        assert locks.is_waiting(b)
        locks.release_all(b)
        assert not locks.is_waiting(b)
        # a still holds; nothing was granted to b.
        assert locks.holds_any(a)
        assert not locks.holds_any(b)

    def test_release_is_idempotent(self, locks, new_txn):
        txn = new_txn()
        locks.acquire(cohort_of(txn), page(1), LockMode.SHARED)
        locks.release_all(txn)
        locks.release_all(txn)  # must not raise
        assert not locks.holds_any(txn)

    def test_release_all_pages(self, locks, new_txn):
        txn = new_txn()
        for index in range(5):
            locks.acquire(
                cohort_of(txn), page(index), LockMode.SHARED
            )
        locks.release_all(txn)
        assert not locks.holds_any(txn)


class TestWaitsForEdges:
    def test_waiter_to_holder_edge(self, locks, new_txn):
        holder, waiter = new_txn(), new_txn()
        locks.acquire(cohort_of(holder), page(1), LockMode.EXCLUSIVE)
        locks.acquire(cohort_of(waiter), page(1), LockMode.EXCLUSIVE)
        assert (waiter, holder) in locks.waits_for_edges()

    def test_waiter_to_waiter_ahead_edge(self, locks, new_txn):
        holder, first, second = new_txn(), new_txn(), new_txn()
        locks.acquire(cohort_of(holder), page(1), LockMode.EXCLUSIVE)
        locks.acquire(cohort_of(first), page(1), LockMode.EXCLUSIVE)
        locks.acquire(cohort_of(second), page(1), LockMode.EXCLUSIVE)
        edges = locks.waits_for_edges()
        assert (second, first) in edges
        assert (second, holder) in edges

    def test_compatible_waiters_no_edge(self, locks, new_txn):
        holder, first, second = new_txn(), new_txn(), new_txn()
        locks.acquire(cohort_of(holder), page(1), LockMode.EXCLUSIVE)
        locks.acquire(cohort_of(first), page(1), LockMode.SHARED)
        locks.acquire(cohort_of(second), page(1), LockMode.SHARED)
        edges = locks.waits_for_edges()
        assert (second, first) not in edges

    def test_no_edges_when_uncontended(self, locks, new_txn):
        locks.acquire(cohort_of(new_txn()), page(1), LockMode.SHARED)
        assert locks.waits_for_edges() == []

    def test_double_request_same_page_rejected(self, locks, new_txn):
        """A cohort blocks on its pending request; issuing another on
        the same page is caller misuse and must fail fast."""
        holder, waiter = new_txn(), new_txn()
        locks.acquire(cohort_of(holder), page(1), LockMode.EXCLUSIVE)
        locks.acquire(cohort_of(waiter), page(1), LockMode.SHARED)
        with pytest.raises(RuntimeError, match="already has a queued"):
            locks.acquire(
                cohort_of(waiter), page(1), LockMode.EXCLUSIVE
            )

    def test_consistency_check_passes(self, locks, new_txn):
        for index in range(4):
            locks.acquire(
                cohort_of(new_txn()), page(index), LockMode.SHARED
            )
        locks.assert_consistent()


class TestDeterministicReleaseOrder:
    """release_all must fire grant passes in sorted page order.

    The waiters' grant events are scheduled in the order pages are
    visited; iterating the held-set directly would make wakeup order
    hash-dependent, which simlint's unordered-set-iteration rule
    rejects for exactly this spot.
    """

    def _grant_order(self, env, locks, new_txn, pages):
        holder = new_txn()
        for p in pages:
            locks.acquire(cohort_of(holder), p, LockMode.EXCLUSIVE)
        waiters = {}
        for p in pages:
            txn = new_txn()
            _, request, _ = locks.acquire(
                cohort_of(txn), p, LockMode.EXCLUSIVE
            )
            waiters[p] = request.event
        order = []

        def watch(p, event):
            yield event
            order.append(p)

        for p, event in waiters.items():
            env.process(watch(p, event))
        env.run()  # let every watcher start and block on its event
        locks.release_all(holder)
        env.run()
        return order

    def test_grants_fire_in_sorted_page_order(self, env, locks,
                                              new_txn):
        pages = [page(index) for index in (7, 2, 9, 4, 0, 5)]
        order = self._grant_order(env, locks, new_txn, pages)
        assert order == sorted(pages)

    def test_order_independent_of_acquisition_order(self, env,
                                                    new_txn):
        first = LockManager(env, upgrades_jump_queue=True)
        pages = [page(index) for index in (3, 1, 8)]
        assert self._grant_order(
            env, first, new_txn, pages
        ) == self._grant_order(
            env,
            LockManager(env, upgrades_jump_queue=True),
            new_txn,
            list(reversed(pages)),
        )
