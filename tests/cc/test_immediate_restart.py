"""Tests for the immediate-restart extension algorithm."""

import pytest

from repro.cc.base import RequestResult
from repro.cc.immediate_restart import (
    ImmediateRestart,
    ImmediateRestartNodeManager,
)

from tests.cc.conftest import page


@pytest.fixture
def manager(context):
    return ImmediateRestartNodeManager(0, context)


def cohort_of(txn):
    return txn.cohorts[0]


def test_uncontended_requests_granted(manager, new_txn):
    txn = new_txn()
    assert (
        manager.read_request(cohort_of(txn), page(1)).result
        is RequestResult.GRANTED
    )
    assert (
        manager.write_request(cohort_of(txn), page(1)).result
        is RequestResult.GRANTED
    )


def test_any_conflict_rejects(manager, new_txn):
    holder = new_txn()
    requester = new_txn()
    manager.read_request(cohort_of(holder), page(1))
    manager.write_request(cohort_of(holder), page(1))
    response = manager.read_request(cohort_of(requester), page(1))
    assert response.result is RequestResult.REJECTED


def test_never_blocks(manager, new_txn):
    """No request ever returns BLOCKED, in either direction of age."""
    old = new_txn(0.0)
    young = new_txn(1.0)
    manager.read_request(cohort_of(old), page(1))
    manager.write_request(cohort_of(old), page(1))
    assert (
        manager.read_request(cohort_of(young), page(1)).result
        is RequestResult.REJECTED
    )
    manager.abort(cohort_of(old))
    manager.register_cohort
    manager.read_request(cohort_of(young), page(1))
    manager.write_request(cohort_of(young), page(1))
    assert (
        manager.read_request(cohort_of(old), page(1)).result
        is RequestResult.REJECTED
    )


def test_rejected_request_not_queued(manager, new_txn):
    holder = new_txn()
    requester = new_txn()
    manager.read_request(cohort_of(holder), page(1))
    manager.write_request(cohort_of(holder), page(1))
    manager.read_request(cohort_of(requester), page(1))
    assert not manager.locks.is_waiting(requester)


def test_shared_access_still_compatible(manager, new_txn):
    a, b = new_txn(), new_txn()
    manager.read_request(cohort_of(a), page(1))
    assert (
        manager.read_request(cohort_of(b), page(1)).result
        is RequestResult.GRANTED
    )


def test_no_waits_for_edges(manager, new_txn):
    holder = new_txn()
    requester = new_txn()
    manager.read_request(cohort_of(holder), page(1))
    manager.write_request(cohort_of(holder), page(1))
    manager.read_request(cohort_of(requester), page(1))
    assert manager.waits_for_edges() == []


class TestAbortCleanup:
    """Abort/cleanup paths: IR keeps no queue, so cleanup is all
    about held locks and the order aborts release them in."""

    def test_abort_releases_locks_for_future_requesters(
        self, manager, new_txn
    ):
        holder = new_txn()
        requester = new_txn()
        manager.read_request(cohort_of(holder), page(1))
        manager.write_request(cohort_of(holder), page(1))
        manager.abort(cohort_of(holder))
        assert not manager.locks.holds_any(holder)
        assert (
            manager.write_request(cohort_of(requester), page(1)).result
            is RequestResult.GRANTED
        )

    def test_abort_is_idempotent(self, manager, new_txn):
        holder = new_txn()
        manager.read_request(cohort_of(holder), page(1))
        manager.abort(cohort_of(holder))
        manager.abort(cohort_of(holder))
        assert not manager.locks.holds_any(holder)

    def test_forced_abort_release_order_is_immaterial(self, new_txn,
                                                      context):
        """Shared holders force-aborted in any order leave the same
        final state: the survivor holds, the page upgrades only after
        every other holder is gone."""
        manager = ImmediateRestartNodeManager(0, context)
        a, b, survivor = new_txn(), new_txn(), new_txn()
        for txn in (a, b, survivor):
            manager.read_request(cohort_of(txn), page(1))
        # An exclusive conversion conflicts while others hold.
        assert (
            manager.write_request(cohort_of(survivor), page(1)).result
            is RequestResult.REJECTED
        )
        manager.abort(cohort_of(b))
        assert (
            manager.write_request(cohort_of(survivor), page(1)).result
            is RequestResult.REJECTED
        )
        manager.abort(cohort_of(a))
        assert (
            manager.write_request(cohort_of(survivor), page(1)).result
            is RequestResult.GRANTED
        )

    def test_abort_leaves_no_waiting_state(self, manager, new_txn):
        holder = new_txn()
        rejected = new_txn()
        manager.read_request(cohort_of(holder), page(1))
        manager.write_request(cohort_of(holder), page(1))
        manager.read_request(cohort_of(rejected), page(1))
        manager.abort(cohort_of(rejected))
        assert not manager.locks.is_waiting(rejected)
        assert manager.waits_for_edges() == []
        # Holder unaffected by the requester's abort.
        assert manager.locks.holds_any(holder)

    def test_crash_reset_drops_held_locks(self, manager, new_txn):
        holder = new_txn()
        manager.read_request(cohort_of(holder), page(1))
        manager.write_request(cohort_of(holder), page(2))
        manager.crash_reset()
        assert not manager.locks.holds_any(holder)
        fresh = new_txn()
        assert (
            manager.write_request(cohort_of(fresh), page(1)).result
            is RequestResult.GRANTED
        )


def test_name():
    assert ImmediateRestart.name == "ir"
