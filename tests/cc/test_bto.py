"""Tests for basic timestamp ordering."""

import pytest

from repro.cc.base import RequestResult
from repro.cc.timestamp_ordering import (
    BasicTimestampOrdering,
    BtoNodeManager,
)

from tests.cc.conftest import page


@pytest.fixture
def manager(context):
    return BtoNodeManager(0, context)


def cohort_of(txn):
    return txn.cohorts[0]


def setup_cohort(manager, txn):
    manager.register_cohort(cohort_of(txn))
    return cohort_of(txn)


class TestReadRules:
    def test_read_of_untouched_page_granted(self, manager, new_txn):
        cohort = setup_cohort(manager, new_txn(1.0))
        response = manager.read_request(cohort, page(1))
        assert response.result is RequestResult.GRANTED

    def test_read_updates_rts(self, manager, new_txn):
        txn = new_txn(1.0)
        cohort = setup_cohort(manager, txn)
        manager.read_request(cohort, page(1))
        rts, _wts = manager.page_timestamps(page(1))
        assert rts == txn.timestamp

    def test_read_older_than_committed_write_rejected(
        self, manager, new_txn
    ):
        writer = new_txn(5.0)
        writer_cohort = setup_cohort(manager, writer)
        writer.commit_timestamp = writer.timestamp
        manager.write_request(writer_cohort, page(1))
        manager.commit(writer_cohort)
        reader_cohort = setup_cohort(manager, new_txn(1.0))
        response = manager.read_request(reader_cohort, page(1))
        assert response.result is RequestResult.REJECTED

    def test_read_blocks_behind_earlier_prewrite(self, manager,
                                                 new_txn):
        writer = new_txn(1.0)
        writer_cohort = setup_cohort(manager, writer)
        manager.write_request(writer_cohort, page(1))
        reader_cohort = setup_cohort(manager, new_txn(2.0))
        response = manager.read_request(reader_cohort, page(1))
        assert response.result is RequestResult.BLOCKED

    def test_read_ignores_later_prewrite(self, manager, new_txn):
        writer = new_txn(5.0)
        writer_cohort = setup_cohort(manager, writer)
        manager.write_request(writer_cohort, page(1))
        reader_cohort = setup_cohort(manager, new_txn(2.0))
        response = manager.read_request(reader_cohort, page(1))
        assert response.result is RequestResult.GRANTED

    def test_blocked_read_granted_on_writer_commit(self, env, manager,
                                                   new_txn):
        writer = new_txn(1.0)
        writer_cohort = setup_cohort(manager, writer)
        manager.write_request(writer_cohort, page(1))
        reader = new_txn(2.0)
        reader_cohort = setup_cohort(manager, reader)
        response = manager.read_request(reader_cohort, page(1))
        manager.commit(writer_cohort)
        env.run()
        assert response.event.fired
        assert response.event.value is RequestResult.GRANTED
        rts, wts = manager.page_timestamps(page(1))
        assert rts == reader.timestamp
        assert wts == writer.timestamp

    def test_blocked_read_granted_on_writer_abort(self, env, manager,
                                                  new_txn):
        writer_cohort = setup_cohort(manager, new_txn(1.0))
        manager.write_request(writer_cohort, page(1))
        reader_cohort = setup_cohort(manager, new_txn(2.0))
        response = manager.read_request(reader_cohort, page(1))
        manager.abort(writer_cohort)
        env.run()
        assert response.event.value is RequestResult.GRANTED

    def test_blocked_read_rejected_if_newer_write_committed(
        self, env, manager, new_txn
    ):
        early_writer = new_txn(1.0)
        late_writer = new_txn(5.0)
        early_cohort = setup_cohort(manager, early_writer)
        late_cohort = setup_cohort(manager, late_writer)
        manager.write_request(early_cohort, page(1))
        manager.write_request(late_cohort, page(1))
        reader_cohort = setup_cohort(manager, new_txn(2.0))
        response = manager.read_request(reader_cohort, page(1))
        assert response.result is RequestResult.BLOCKED
        # The *later* writer commits first, advancing wts past the
        # reader's timestamp; then the early writer commits.
        manager.commit(late_cohort)
        manager.commit(early_cohort)
        env.run()
        assert response.event.value is RequestResult.REJECTED


class TestWriteRules:
    def test_write_never_blocks(self, manager, new_txn):
        a_cohort = setup_cohort(manager, new_txn(1.0))
        b_cohort = setup_cohort(manager, new_txn(2.0))
        assert (
            manager.write_request(a_cohort, page(1)).result
            is RequestResult.GRANTED
        )
        assert (
            manager.write_request(b_cohort, page(1)).result
            is RequestResult.GRANTED
        )
        assert manager.pending_count(page(1)) == 2

    def test_write_older_than_read_rejected(self, manager, new_txn):
        reader_cohort = setup_cohort(manager, new_txn(5.0))
        manager.read_request(reader_cohort, page(1))
        writer_cohort = setup_cohort(manager, new_txn(1.0))
        response = manager.write_request(writer_cohort, page(1))
        assert response.result is RequestResult.REJECTED

    def test_thomas_write_rule_ignores_stale_write(self, manager,
                                                   new_txn):
        late_writer = new_txn(5.0)
        late_cohort = setup_cohort(manager, late_writer)
        manager.write_request(late_cohort, page(1))
        manager.commit(late_cohort)
        stale_cohort = setup_cohort(manager, new_txn(1.0))
        response = manager.write_request(stale_cohort, page(1))
        assert response.result is RequestResult.GRANTED
        assert manager.pending_count(page(1)) == 0  # not queued
        # The discarded write never installs.
        installed = manager.commit(stale_cohort)
        assert installed == []

    def test_commit_installs_in_timestamp_order(self, manager,
                                                new_txn):
        early = new_txn(1.0)
        late = new_txn(2.0)
        early_cohort = setup_cohort(manager, early)
        late_cohort = setup_cohort(manager, late)
        manager.write_request(early_cohort, page(1))
        manager.write_request(late_cohort, page(1))
        # Late writer commits first; early's later install must not
        # regress the page's write timestamp.
        manager.commit(late_cohort)
        installed = manager.commit(early_cohort)
        assert installed == []
        _rts, wts = manager.page_timestamps(page(1))
        assert wts == late.timestamp

    def test_commit_returns_installed_pages(self, manager, new_txn):
        txn = new_txn(1.0)
        cohort = setup_cohort(manager, txn)
        manager.write_request(cohort, page(1))
        manager.write_request(cohort, page(2))
        installed = manager.commit(cohort)
        assert sorted(installed) == sorted([page(1), page(2)])


class TestAbort:
    def test_abort_discards_prewrites(self, manager, new_txn):
        cohort = setup_cohort(manager, new_txn(1.0))
        manager.write_request(cohort, page(1))
        manager.abort(cohort)
        assert manager.pending_count(page(1)) == 0
        _rts, wts = manager.page_timestamps(page(1))
        assert wts[0] < 0  # never installed

    def test_abort_removes_blocked_read(self, manager, new_txn):
        writer_cohort = setup_cohort(manager, new_txn(1.0))
        manager.write_request(writer_cohort, page(1))
        reader_cohort = setup_cohort(manager, new_txn(2.0))
        manager.read_request(reader_cohort, page(1))
        manager.abort(reader_cohort)
        # Writer commits: nobody left to wake, no crash.
        manager.commit(writer_cohort)

    def test_abort_idempotent(self, manager, new_txn):
        cohort = setup_cohort(manager, new_txn(1.0))
        manager.write_request(cohort, page(1))
        manager.abort(cohort)
        manager.abort(cohort)


class TestTimestampPolicy:
    def test_restart_gets_fresh_timestamp(self, new_txn):
        algorithm = BasicTimestampOrdering()
        txn = new_txn()
        txn.startup_timestamp = None
        txn.timestamp = None
        algorithm.assign_timestamps(txn, 1.0)
        first = txn.timestamp
        assert txn.startup_timestamp == first
        algorithm.assign_timestamps(txn, 9.0)
        assert txn.timestamp > first
        assert txn.startup_timestamp == first  # startup never changes

    def test_name(self):
        assert BasicTimestampOrdering.name == "bto"
