"""Seed-stability for the tie-break-sensitive locking algorithms.

The explicit ordering fixes (sorted grant passes in the lock table,
tid tie-breaks in victim selection) exist so that schedules are a pure
function of the seed.  These tests pin that property specifically for
the algorithms whose wakeup/victim choices the tie-breaks feed —
deliberately at high contention (zero think time, writes, declustered
placement), where grant order and victim choice actually decide the
schedule.
"""

import pytest

from repro.core.config import (
    PlacementKind,
    TransactionClassConfig,
    WorkloadConfig,
    paper_default_config,
)
from repro.core.simulation import run_simulation


def contended_config(algorithm, seed):
    config = paper_default_config(
        algorithm,
        think_time=0.0,
        placement=PlacementKind.DECLUSTERED,
        placement_degree=8,
        seed=seed,
    )
    workload = WorkloadConfig(
        num_terminals=24,
        think_time=0.0,
        classes=(
            TransactionClassConfig(write_probability=0.25),
        ),
    )
    return config.with_(duration=6.0, warmup=2.0, workload=workload)


@pytest.mark.parametrize("algorithm", ["2pl", "ww", "wd", "mvcc"])
@pytest.mark.parametrize("seed", [7, 1234])
def test_contended_runs_are_bit_identical(algorithm, seed):
    first = run_simulation(contended_config(algorithm, seed))
    second = run_simulation(contended_config(algorithm, seed))
    assert first.as_dict() == second.as_dict()
    # Contention sanity: the run actually exercised conflicts, so the
    # tie-break paths (grant passes, victim selection) were hit.
    assert first.aborts > 0 or first.blocking_count > 0


def test_seed_changes_the_schedule():
    """Guard against accidentally comparing constants: different
    seeds must produce different measurements."""
    a = run_simulation(contended_config("2pl", seed=7))
    b = run_simulation(contended_config("2pl", seed=8))
    assert a.as_dict() != b.as_dict()
