"""Shared fixtures for concurrency control unit tests."""

import pytest

from repro.cc.base import CCContext
from repro.core.config import TransactionClassConfig
from repro.core.database import PageId
from repro.core.transaction import (
    AccessSpec,
    CohortSpec,
    PageAccess,
    Transaction,
)
from repro.sim.kernel import Environment


class AbortRecorder:
    """Captures abort requests issued by CC managers."""

    def __init__(self):
        self.requests = []

    def __call__(self, transaction, reason, from_node):
        self.requests.append((transaction, reason, from_node))

    @property
    def victims(self):
        return [transaction for transaction, _, _ in self.requests]


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def aborts():
    return AbortRecorder()


@pytest.fixture
def context(env, aborts):
    return CCContext(env, request_abort=aborts, detection_interval=1.0)


def page(index, partition=0, relation=0):
    """Shorthand page constructor for CC tests."""
    return PageId(relation, partition, index)


def make_transaction(env, pages=(), node=0):
    """A one-cohort transaction touching ``pages`` at ``node``."""
    accesses = tuple(
        PageAccess(p, is_update=False) for p in pages
    )
    spec = AccessSpec(
        relation=0, cohorts=(CohortSpec(node=node, accesses=accesses),)
    )
    transaction = Transaction(
        0, TransactionClassConfig(), spec, env.now
    )
    transaction.begin_attempt()
    return transaction


@pytest.fixture
def new_txn(env):
    """Factory: fresh single-cohort transactions with timestamps."""

    def factory(timestamp_time=None, node=0):
        transaction = make_transaction(env, node=node)
        time = env.now if timestamp_time is None else timestamp_time
        from repro.core.transaction import make_timestamp

        transaction.startup_timestamp = make_timestamp(time)
        transaction.timestamp = transaction.startup_timestamp
        return transaction

    return factory
