"""Tests for the CC algorithm registry."""

import pytest

from repro.cc.mvcc import MultiVersionCC
from repro.cc.no_dc import NoDataContention
from repro.cc.optimistic import DistributedCertification
from repro.cc.registry import (
    ALGORITHM_NAMES,
    MODERN_NAMES,
    make_algorithm,
    register_algorithm,
)
from repro.cc.timestamp_ordering import BasicTimestampOrdering
from repro.cc.two_phase_locking import TwoPhaseLocking
from repro.cc.wound_wait import WoundWait
from repro.router.dispatch import RoutedCC


def _bound(name):
    """Instantiate and late-bind like Simulation.__init__ does."""
    from repro.core.config import paper_default_config
    from repro.sim.streams import RandomStreams

    algorithm = make_algorithm(name)
    algorithm.bind(paper_default_config(name), RandomStreams(0))
    return algorithm


@pytest.mark.parametrize(
    ("name", "cls"),
    [
        ("2pl", TwoPhaseLocking),
        ("ww", WoundWait),
        ("bto", BasicTimestampOrdering),
        ("opt", DistributedCertification),
        ("no_dc", NoDataContention),
        ("mvcc", MultiVersionCC),
        ("router", RoutedCC),
    ],
)
def test_lookup_by_name(name, cls):
    assert isinstance(make_algorithm(name), cls)


@pytest.mark.parametrize(
    "spelling", ["2PL", " ww ", "NO_DC", "NODC", "no-dc", "Opt", "MVCC"]
)
def test_tolerant_spellings(spelling):
    make_algorithm(spelling)  # must not raise


def test_unknown_name_rejected():
    with pytest.raises(ValueError, match="unknown"):
        make_algorithm("mv2pl")


def test_all_names_resolvable():
    for name in ALGORITHM_NAMES + MODERN_NAMES:
        assert make_algorithm(name).name == name


def test_every_algorithm_defines_crash_reset(context):
    """Regression for the cc-interface lint finding: NO_DC silently
    inherited the base-class no-op ``crash_reset``.  Every registered
    algorithm's node manager must define the method itself (a
    deliberate no-op is fine — it has to be a stated decision)."""
    from repro.cc.base import NodeCCManager

    for name in ALGORITHM_NAMES + MODERN_NAMES:
        manager = _bound(name).make_node_manager(0, context)
        assert (
            type(manager).crash_reset is not NodeCCManager.crash_reset
        ), f"{name}: crash_reset inherited from NodeCCManager"


def test_register_custom_algorithm():
    class Custom(NoDataContention):
        name = "custom-test-algo"

    register_algorithm("custom-test-algo", Custom)
    assert isinstance(make_algorithm("custom-test-algo"), Custom)
    with pytest.raises(ValueError, match="already registered"):
        register_algorithm("custom-test-algo", Custom)
