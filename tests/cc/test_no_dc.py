"""Tests for the NO_DC baseline."""

import pytest

from repro.cc.base import RequestResult
from repro.cc.no_dc import NoDataContention, NoDcNodeManager

from tests.cc.conftest import page


@pytest.fixture
def manager(context):
    return NoDcNodeManager(0, context)


def cohort_of(txn):
    return txn.cohorts[0]


def test_everything_granted(manager, new_txn):
    a, b = new_txn(), new_txn()
    for txn in (a, b):
        assert (
            manager.read_request(cohort_of(txn), page(1)).result
            is RequestResult.GRANTED
        )
        assert (
            manager.write_request(cohort_of(txn), page(1)).result
            is RequestResult.GRANTED
        )


def test_prepare_always_yes(manager, new_txn):
    assert manager.prepare(cohort_of(new_txn())) is True


def test_commit_installs_all_updates(manager, new_txn):
    txn = new_txn()
    assert manager.commit(cohort_of(txn)) == txn.cohorts[0].updated_pages


def test_abort_noop(manager, new_txn):
    manager.abort(cohort_of(new_txn()))


def test_no_edges_reported(manager):
    assert manager.waits_for_edges() == []


def test_name():
    assert NoDataContention.name == "no_dc"
