"""Adversarial random-schedule testing of every CC algorithm.

A miniature transaction harness (no disks, no messages — just the
kernel, one node manager, and randomized delays) drives a batch of
conflicting transactions through random interleavings, retrying on
aborts exactly like the real transaction manager.  The committed
history is then checked for serializability with the auditor, and the
system for liveness (the workload must finish; progress must be made).

This attacks the algorithms from a different angle than the full
simulation: delays are arbitrary (not disk-shaped), conflict density is
extreme, and thousands of interleavings are explored across seeds.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc import make_algorithm
from repro.cc.base import CCContext, RequestResult
from repro.core.audit import Auditor
from repro.core.config import TransactionClassConfig
from repro.core.database import PageId
from repro.core.transaction import (
    AccessSpec,
    CohortSpec,
    PageAccess,
    Transaction,
)
from repro.sim.kernel import Environment, Interrupt

#: Algorithms that must produce serializable histories.  NO_DC is
#: excluded: it is the paper's no-contention *baseline* and performs no
#: concurrency control at all, so its conflicting histories are
#: (deliberately) not serializable.
SERIALIZABLE_ALGORITHMS = ("2pl", "ww", "bto", "opt", "wd", "ir")
ALGORITHMS = SERIALIZABLE_ALGORITHMS + ("no_dc",)
MAX_ATTEMPTS = 60


class MiniHarness:
    """Single-node transaction driver over one CC manager."""

    def __init__(self, algorithm_name, seed, num_txns, num_pages,
                 write_fraction=0.5):
        self.env = Environment()
        self.rng = random.Random(seed)
        self.algorithm = make_algorithm(algorithm_name)
        self.context = CCContext(
            self.env, request_abort=self._request_abort
        )
        self.manager = self.algorithm.make_node_manager(
            0, self.context
        )
        self.auditor = Auditor()
        self.committed = 0
        self.failed = []
        self._processes = {}
        self.transactions = [
            self._make_transaction(index, num_pages, write_fraction)
            for index in range(num_txns)
        ]

    def _make_transaction(self, index, num_pages, write_fraction):
        count = self.rng.randint(1, min(4, num_pages))
        pages = self.rng.sample(range(num_pages), count)
        accesses = tuple(
            PageAccess(
                PageId(0, 0, page),
                is_update=self.rng.random() < write_fraction,
            )
            for page in pages
        )
        spec = AccessSpec(
            relation=0,
            cohorts=(CohortSpec(node=0, accesses=accesses),),
        )
        return Transaction(
            index, TransactionClassConfig(), spec, 0.0
        )

    def _request_abort(self, transaction, reason, _from_node):
        if transaction.abort_pending or not transaction.abortable:
            return
        transaction.mark_abort(reason)
        process = self._processes.get(transaction.tid)
        if process is not None and process.alive:
            process.interrupt(reason)

    def _delay(self):
        return self.env.timeout(self.rng.random() * 0.01)

    def _transaction_body(self, transaction):
        for _attempt in range(MAX_ATTEMPTS):
            self.algorithm.assign_timestamps(
                transaction, self.env.now
            )
            transaction.begin_attempt()
            cohort = transaction.cohorts[0]
            committed = yield from self._run_attempt(
                transaction, cohort
            )
            if committed:
                self.committed += 1
                self.auditor.on_committed(transaction)
                return
            self.auditor.on_aborted(transaction)
            self.manager.abort(cohort)
            yield self.env.timeout(self.rng.random() * 0.05)
        self.failed.append(transaction.tid)

    def _run_attempt(self, transaction, cohort):
        from repro.core.transaction import TransactionState

        try:
            self.manager.register_cohort(cohort)
            for access in cohort.spec.accesses:
                yield self._delay()
                ok = yield from self._access(
                    cohort, access.page, write=False
                )
                if not ok:
                    return False
                if access.is_update:
                    ok = yield from self._access(
                        cohort, access.page, write=True
                    )
                    if not ok:
                        return False
            yield self._delay()
            if transaction.abort_pending:
                return False
            transaction.state = TransactionState.PREPARING
            self.algorithm.assign_commit_timestamp(
                transaction, self.env.now
            )
            if not self.manager.prepare(cohort):
                return False
            if transaction.abort_pending:
                return False
            transaction.state = TransactionState.COMMITTING
            installed = self.manager.commit(cohort)
            self.auditor.on_installed(cohort, installed)
            transaction.state = TransactionState.COMMITTED
            return True
        except Interrupt:
            return False

    def _access(self, cohort, page, write):
        if write:
            response = self.manager.write_request(cohort, page)
        else:
            response = self.manager.read_request(cohort, page)
        if response.result is RequestResult.REJECTED:
            return False
        if response.result is RequestResult.BLOCKED:
            outcome = yield response.event
            if outcome is not RequestResult.GRANTED:
                return False
        if cohort.transaction.abort_pending:
            return False
        if not write:
            self.auditor.on_read_granted(cohort, page)
        return True

    def run(self):
        for transaction in self.transactions:
            process = self.env.process(
                self._transaction_body(transaction),
                name=f"mini-txn-{transaction.tid}",
            )
            self._processes[transaction.tid] = process
        self.env.run(until=1_000.0)
        self.env.check_crashes()
        return self


@pytest.mark.parametrize("algorithm", SERIALIZABLE_ALGORITHMS)
@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_random_schedule_serializable(algorithm, seed):
    harness = MiniHarness(
        algorithm, seed, num_txns=10, num_pages=5
    ).run()
    cycle = harness.auditor.find_cycle()
    assert cycle is None, (
        f"{algorithm} seed {seed} produced cycle {cycle}"
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_random_schedule_liveness(algorithm, seed):
    """Every transaction must eventually commit — no livelock, no lost
    wakeups, within the generous attempt budget."""
    harness = MiniHarness(
        algorithm, seed, num_txns=8, num_pages=4
    ).run()
    assert harness.failed == []
    assert harness.committed == 8


@given(
    algorithm=st.sampled_from(SERIALIZABLE_ALGORITHMS),
    seed=st.integers(min_value=0, max_value=100_000),
)
@settings(max_examples=60, deadline=None)
def test_property_random_schedules(algorithm, seed):
    harness = MiniHarness(
        algorithm, seed, num_txns=8, num_pages=4
    ).run()
    assert harness.auditor.find_cycle() is None
    # Progress: at least half the batch commits even under the
    # nastiest interleavings (all of them should, but the property
    # keeps a margin for extreme abort storms within the attempt cap).
    assert harness.committed >= 4
