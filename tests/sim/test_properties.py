"""Property-based tests (hypothesis) for the kernel and resources."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Environment
from repro.sim.resources import CPU, Disk, DiskRequestKind
from repro.sim.stats import Tally, TimeWeighted


@st.composite
def job_sets(draw):
    count = draw(st.integers(min_value=1, max_value=12))
    jobs = [
        (
            draw(st.floats(min_value=0.0, max_value=2.0)),  # arrival
            draw(st.integers(min_value=1, max_value=500_000)),  # work
        )
        for _ in range(count)
    ]
    return jobs


class TestProcessorSharingProperties:
    @given(job_sets())
    @settings(max_examples=60, deadline=None)
    def test_work_conservation(self, jobs):
        """Total completion span >= total work / rate, and every job
        finishes."""
        env = Environment()
        cpu = CPU(env, mips=1.0)
        finishes = []

        def worker(arrival, work):
            yield env.timeout(arrival)
            yield cpu.execute(work)
            finishes.append(env.now)

        for arrival, work in jobs:
            env.process(worker(arrival, work))
        env.run()
        assert len(finishes) == len(jobs)
        total_work_seconds = sum(w for _, w in jobs) / 1e6
        first_arrival = min(a for a, _ in jobs)
        # The CPU cannot finish everything faster than serial service
        # starting at the first arrival.
        assert max(finishes) >= first_arrival + total_work_seconds - 1e-6

    @given(job_sets())
    @settings(max_examples=60, deadline=None)
    def test_no_job_beats_dedicated_service(self, jobs):
        """No job finishes before arrival + its own dedicated time."""
        env = Environment()
        cpu = CPU(env, mips=1.0)
        violations = []

        def worker(arrival, work):
            yield env.timeout(arrival)
            start = env.now
            yield cpu.execute(work)
            elapsed = env.now - start
            if elapsed < work / 1e6 - 1e-9:
                violations.append((work, elapsed))

        for arrival, work in jobs:
            env.process(worker(arrival, work))
        env.run()
        assert violations == []

    @given(
        st.lists(
            st.integers(min_value=1, max_value=200_000),
            min_size=2,
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_simultaneous_jobs_finish_in_size_order(self, works):
        """With equal arrivals, PS completes jobs in work order."""
        env = Environment()
        cpu = CPU(env, mips=1.0)
        finished = []

        def worker(index, work):
            yield cpu.execute(work)
            finished.append(index)

        for index, work in enumerate(works):
            env.process(worker(index, work))
        env.run()
        finish_works = [works[i] for i in finished]
        assert finish_works == sorted(finish_works)


class TestDiskProperties:
    @given(
        st.lists(
            st.sampled_from(
                [DiskRequestKind.READ, DiskRequestKind.WRITE]
            ),
            min_size=1,
            max_size=20,
        ),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_all_requests_eventually_served(self, kinds, seed):
        env = Environment()
        disk = Disk(env, 0.001, 0.002, random.Random(seed))
        served = []

        def client(index, kind):
            yield disk.access(kind)
            served.append(index)

        for index, kind in enumerate(kinds):
            env.process(client(index, kind))
        env.run()
        assert sorted(served) == list(range(len(kinds)))
        assert disk.reads_served + disk.writes_served == len(kinds)


class TestStatsProperties:
    @given(
        st.lists(
            st.floats(
                min_value=-1e6,
                max_value=1e6,
                allow_nan=False,
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_tally_matches_naive_mean(self, values):
        tally = Tally()
        for value in values:
            tally.record(value)
        naive = sum(values) / len(values)
        assert abs(tally.mean - naive) < 1e-6 * max(
            1.0, abs(naive)
        ) + 1e-6
        assert tally.minimum == min(values)
        assert tally.maximum == max(values)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.001, max_value=10.0),
                st.floats(min_value=0.0, max_value=5.0),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_time_weighted_mean_bounded_by_extremes(self, steps):
        signal = TimeWeighted(0.0, steps[0][1])
        now = 0.0
        values = [steps[0][1]]
        for delta, value in steps:
            now += delta
            signal.update(now, value)
            values.append(value)
        mean = signal.mean(now + 1.0)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9
