"""Edge-case kernel tests: races the transaction manager relies on."""

import pytest

from repro.sim.kernel import Environment, Interrupt, SimulationError


@pytest.fixture
def env():
    return Environment()


class TestSameInstantRaces:
    def test_fire_and_interrupt_same_instant_interrupt_first(
        self, env
    ):
        """Event fires and interrupt lands at the same timestamp with
        the interrupt scheduled first: the interrupt wins and the
        stale delivery is dropped."""
        event = env.event()
        outcome = []

        def body():
            try:
                yield event
                outcome.append("value")
            except Interrupt:
                outcome.append("interrupt")

        process = env.process(body())
        env.schedule(1.0, lambda: process.interrupt())
        env.schedule(1.0, lambda: event.succeed("v"))
        env.run()
        assert outcome == ["interrupt"]

    def test_fire_then_interrupt_same_instant_fire_first(self, env):
        """With the fire scheduled first, delivery is deferred — the
        interrupt still arrives before the deferred resume runs, so
        the interrupt wins.  This mirrors a cohort aborted in the same
        instant its lock is granted."""
        event = env.event()
        outcome = []

        def body():
            try:
                yield event
                outcome.append("value")
            except Interrupt:
                outcome.append("interrupt")

        process = env.process(body())
        env.schedule(1.0, lambda: event.succeed("v"))
        env.schedule(1.0, lambda: process.interrupt())
        env.run()
        assert outcome == ["interrupt"]

    def test_double_interrupt_second_is_noop(self, env):
        event = env.event()
        outcome = []

        def body():
            try:
                yield event
            except Interrupt:
                outcome.append("first")
                try:
                    yield env.timeout(5.0)
                except Interrupt:
                    outcome.append("second")
                return

        process = env.process(body())

        def both():
            process.interrupt()
            process.interrupt()  # delivered while not waiting

        env.schedule(1.0, both)
        env.run()
        # The second interrupt lands at the next wait point.
        assert outcome == ["first", "second"]

    def test_callbacks_scheduled_from_callbacks_run_same_instant(
        self, env
    ):
        order = []

        def outer():
            order.append("outer")
            env.schedule(0.0, lambda: order.append("inner"))

        env.schedule(1.0, outer)
        env.schedule(1.0, lambda: order.append("sibling"))
        env.run()
        assert order == ["outer", "sibling", "inner"]


class TestProcessComposition:
    def test_deep_process_chain(self, env):
        def leaf():
            yield env.timeout(1.0)
            return 1

        def make_level(child_factory):
            def level():
                value = yield env.process(child_factory())
                return value + 1

            return level

        factory = leaf
        for _ in range(50):
            factory = make_level(factory)
        top = env.process(factory())
        env.run()
        assert top.result == 51

    def test_two_waiters_on_one_process(self, env):
        def child():
            yield env.timeout(2.0)
            return "r"

        child_process = env.process(child())
        results = []

        def waiter(tag):
            value = yield child_process
            results.append((tag, value, env.now))

        env.process(waiter("a"))
        env.process(waiter("b"))
        env.run()
        assert sorted(results) == [("a", "r", 2.0), ("b", "r", 2.0)]

    def test_exception_reaches_all_waiters(self, env):
        def child():
            yield env.timeout(1.0)
            raise ValueError("x")

        child_process = env.process(child())
        caught = []

        def waiter(tag):
            try:
                yield child_process
            except ValueError:
                caught.append(tag)

        env.process(waiter("a"))
        env.process(waiter("b"))
        env.run()
        assert sorted(caught) == ["a", "b"]
        assert env.crashes == []  # observed by waiters

    def test_all_of_mixed_children(self, env):
        event = env.event()

        def child():
            yield env.timeout(3.0)
            return "proc"

        def waiter():
            values = yield env.all_of([event, env.process(child())])
            return (env.now, values)

        process = env.process(waiter())
        env.schedule(5.0, lambda: event.succeed("ev"))
        env.run()
        assert process.result == (5.0, ["ev", "proc"])

    def test_any_of_all_already_fired(self, env):
        first = env.event()
        first.succeed("early")
        second = env.event()
        second.succeed("later")

        def waiter():
            index, value = yield env.any_of([first, second])
            return (index, value)

        process = env.process(waiter())
        env.run()
        assert process.result == (0, "early")


class TestErrorHandling:
    def test_succeed_twice_detected(self, env):
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_negative_timeout_rejected(self, env):
        def body():
            yield env.timeout(-1.0)

        env.process(body())
        env.run()
        assert len(env.crashes) == 1

    def test_check_crashes_chains_cause(self, env):
        def body():
            yield env.timeout(1.0)
            raise KeyError("inner")

        env.process(body())
        env.run()
        with pytest.raises(SimulationError) as info:
            env.check_crashes()
        assert isinstance(info.value.__cause__, KeyError)

    def test_run_twice_continues(self, env):
        seen = []
        env.schedule(1.0, lambda: seen.append(1))
        env.schedule(5.0, lambda: seen.append(5))
        env.run(until=2.0)
        assert seen == [1]
        env.run(until=10.0)
        assert seen == [1, 5]
