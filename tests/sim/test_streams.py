"""Unit tests for named random streams."""

import pytest

from repro.sim.streams import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_name_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")


class TestRandomStreams:
    def test_same_name_same_stream(self):
        streams = RandomStreams(1)
        assert streams.get("x") is streams.get("x")

    def test_streams_reproducible_across_instances(self):
        a = RandomStreams(7)
        b = RandomStreams(7)
        assert [a.get("s").random() for _ in range(5)] == [
            b.get("s").random() for _ in range(5)
        ]

    def test_streams_independent_of_creation_order(self):
        a = RandomStreams(7)
        a.get("first")
        first_draw_late = a.get("second").random()
        b = RandomStreams(7)
        first_draw_early = b.get("second").random()
        assert first_draw_late == first_draw_early

    def test_different_names_differ(self):
        streams = RandomStreams(7)
        assert streams.get("a").random() != streams.get("b").random()

    def test_exponential_mean(self):
        streams = RandomStreams(3)
        draws = [streams.exponential("e", 2.0) for _ in range(20_000)]
        assert sum(draws) / len(draws) == pytest.approx(2.0, rel=0.05)

    def test_exponential_zero_mean_is_zero(self):
        streams = RandomStreams(3)
        assert streams.exponential("e", 0.0) == 0.0

    def test_uniform_int_bounds(self):
        streams = RandomStreams(3)
        draws = [
            streams.uniform_int("u", 4, 12) for _ in range(2_000)
        ]
        assert min(draws) == 4
        assert max(draws) == 12

    def test_uniform_bounds(self):
        streams = RandomStreams(3)
        draws = [
            streams.uniform("u", 0.01, 0.03) for _ in range(1_000)
        ]
        assert all(0.01 <= d <= 0.03 for d in draws)

    def test_bernoulli_edge_cases(self):
        streams = RandomStreams(3)
        assert streams.bernoulli("b", 0.0) is False
        assert streams.bernoulli("b", 1.0) is True

    def test_bernoulli_rate(self):
        streams = RandomStreams(3)
        hits = sum(
            streams.bernoulli("b", 0.125) for _ in range(40_000)
        )
        assert hits / 40_000 == pytest.approx(0.125, abs=0.01)

    def test_sample_without_replacement_distinct(self):
        streams = RandomStreams(3)
        sample = streams.sample_without_replacement("s", 300, 12)
        assert len(set(sample)) == 12
        assert all(0 <= x < 300 for x in sample)

    def test_sample_too_many_raises(self):
        streams = RandomStreams(3)
        with pytest.raises(ValueError):
            streams.sample_without_replacement("s", 3, 5)
