"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import (
    Environment,
    Interrupt,
    Mailbox,
    SimulationError,
)


@pytest.fixture
def env():
    return Environment()


def run_all(env):
    env.run()


class TestScheduling:
    def test_clock_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_callback_runs_at_scheduled_time(self, env):
        seen = []
        env.schedule(5.0, lambda: seen.append(env.now))
        env.run()
        assert seen == [5.0]

    def test_callbacks_run_in_time_order(self, env):
        seen = []
        env.schedule(3.0, lambda: seen.append("c"))
        env.schedule(1.0, lambda: seen.append("a"))
        env.schedule(2.0, lambda: seen.append("b"))
        env.run()
        assert seen == ["a", "b", "c"]

    def test_equal_times_run_in_schedule_order(self, env):
        seen = []
        for tag in "abcde":
            env.schedule(1.0, lambda tag=tag: seen.append(tag))
        env.run()
        assert seen == list("abcde")

    def test_cancelled_callback_never_runs(self, env):
        seen = []
        handle = env.schedule(1.0, lambda: seen.append("x"))
        handle.cancel()
        env.run()
        assert seen == []

    def test_negative_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            env.schedule(-0.1, lambda: None)

    def test_run_until_advances_clock_exactly(self, env):
        env.schedule(10.0, lambda: None)
        env.run(until=4.0)
        assert env.now == 4.0

    def test_run_until_beyond_heap_advances_clock(self, env):
        env.schedule(1.0, lambda: None)
        env.run(until=100.0)
        assert env.now == 100.0

    def test_callback_at_until_boundary_runs(self, env):
        seen = []
        env.schedule(5.0, lambda: seen.append(1))
        env.run(until=5.0)
        assert seen == [1]


class TestProcesses:
    def test_process_runs_to_completion(self, env):
        seen = []

        def body():
            seen.append(env.now)
            yield env.timeout(2.0)
            seen.append(env.now)

        env.process(body())
        env.run()
        assert seen == [0.0, 2.0]

    def test_process_result_available_after_finish(self, env):
        def body():
            yield env.timeout(1.0)
            return 42

        process = env.process(body())
        env.run()
        assert not process.alive
        assert process.result == 42

    def test_waiting_on_process_gets_return_value(self, env):
        def child():
            yield env.timeout(3.0)
            return "payload"

        def parent():
            value = yield env.process(child())
            return (env.now, value)

        parent_process = env.process(parent())
        env.run()
        assert parent_process.result == (3.0, "payload")

    def test_waiting_on_finished_process_resumes_immediately(self, env):
        def child():
            yield env.timeout(1.0)
            return "done"

        child_process = env.process(child())

        def parent():
            yield env.timeout(5.0)
            value = yield child_process
            return (env.now, value)

        parent_process = env.process(parent())
        env.run()
        assert parent_process.result == (5.0, "done")

    def test_exception_propagates_to_waiter(self, env):
        def child():
            yield env.timeout(1.0)
            raise ValueError("boom")

        def parent():
            try:
                yield env.process(child())
            except ValueError as error:
                return str(error)

        parent_process = env.process(parent())
        env.run()
        assert parent_process.result == "boom"

    def test_unobserved_crash_is_recorded(self, env):
        def body():
            yield env.timeout(1.0)
            raise RuntimeError("unseen")

        env.process(body())
        env.run()
        assert len(env.crashes) == 1
        with pytest.raises(SimulationError):
            env.check_crashes()

    def test_yielding_non_waitable_crashes_process(self, env):
        def body():
            yield 17

        env.process(body())
        env.run()
        assert len(env.crashes) == 1

    def test_timeout_value_passthrough(self, env):
        def body():
            value = yield env.timeout(1.0, value="hello")
            return value

        process = env.process(body())
        env.run()
        assert process.result == "hello"


class TestEvents:
    def test_event_wakes_waiter_with_value(self, env):
        event = env.event()

        def waiter():
            value = yield event
            return (env.now, value)

        process = env.process(waiter())
        env.schedule(4.0, lambda: event.succeed("v"))
        env.run()
        assert process.result == (4.0, "v")

    def test_multiple_waiters_all_wake(self, env):
        event = env.event()
        results = []

        def waiter(tag):
            value = yield event
            results.append((tag, value))

        for tag in range(3):
            env.process(waiter(tag))
        env.schedule(1.0, lambda: event.succeed("x"))
        env.run()
        assert sorted(results) == [(0, "x"), (1, "x"), (2, "x")]

    def test_waiting_on_fired_event_resumes(self, env):
        event = env.event()
        event.succeed(99)

        def waiter():
            value = yield event
            return value

        process = env.process(waiter())
        env.run()
        assert process.result == 99

    def test_double_succeed_raises(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_succeed_does_not_reenter_caller(self, env):
        """Firing an event must defer delivery (no reentrancy)."""
        event = env.event()
        order = []

        def waiter():
            yield event
            order.append("woken")

        env.process(waiter())

        def firer():
            yield env.timeout(1.0)
            event.succeed()
            order.append("after-fire")

        env.process(firer())
        env.run()
        assert order == ["after-fire", "woken"]


class TestInterrupts:
    def test_interrupt_blocked_on_event(self, env):
        event = env.event()

        def body():
            try:
                yield event
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, env.now)

        process = env.process(body())
        env.schedule(2.0, lambda: process.interrupt("why"))
        env.run()
        assert process.result == ("interrupted", "why", 2.0)

    def test_interrupt_cancels_timeout(self, env):
        def body():
            try:
                yield env.timeout(100.0)
            except Interrupt:
                return env.now

        process = env.process(body())
        env.schedule(1.0, lambda: process.interrupt())
        env.run()
        assert process.result == 1.0
        assert env.now == 1.0  # the 100s timer was cancelled

    def test_interrupt_dead_process_is_noop(self, env):
        def body():
            yield env.timeout(1.0)

        process = env.process(body())
        env.run()
        process.interrupt()  # must not raise
        assert not process.alive

    def test_interrupted_process_stops_waiting_on_event(self, env):
        event = env.event()

        def body():
            try:
                yield event
            except Interrupt:
                yield env.timeout(1.0)
                return "moved-on"

        process = env.process(body())
        env.schedule(1.0, lambda: process.interrupt())
        # Fire the event after the interrupt: must not double-resume.
        env.schedule(1.5, lambda: event.succeed("stale"))
        env.run()
        assert process.result == "moved-on"

    def test_interrupt_before_first_step(self, env):
        def body():
            try:
                yield env.timeout(10.0)
            except Interrupt:
                return "early"

        process = env.process(body())
        process.interrupt()
        env.run()
        assert process.result == "early"

    def test_escaped_interrupt_terminates_quietly(self, env):
        def body():
            yield env.timeout(10.0)

        process = env.process(body())
        env.schedule(1.0, lambda: process.interrupt())
        env.run()
        assert not process.alive
        assert env.crashes == []


class TestCombinators:
    def test_all_of_collects_in_order(self, env):
        first, second = env.event(), env.event()

        def waiter():
            values = yield env.all_of([first, second])
            return (env.now, values)

        process = env.process(waiter())
        env.schedule(2.0, lambda: second.succeed("b"))
        env.schedule(5.0, lambda: first.succeed("a"))
        env.run()
        assert process.result == (5.0, ["a", "b"])

    def test_all_of_empty_resolves_immediately(self, env):
        def waiter():
            values = yield env.all_of([])
            return values

        process = env.process(waiter())
        env.run()
        assert process.result == []

    def test_any_of_returns_first(self, env):
        first, second = env.event(), env.event()

        def waiter():
            index, value = yield env.any_of([first, second])
            return (env.now, index, value)

        process = env.process(waiter())
        env.schedule(3.0, lambda: second.succeed("fast"))
        env.schedule(7.0, lambda: first.succeed("slow"))
        env.run()
        assert process.result == (3.0, 1, "fast")

    def test_any_of_with_processes(self, env):
        def quick():
            yield env.timeout(1.0)
            return "q"

        def slow():
            yield env.timeout(9.0)
            return "s"

        def waiter():
            index, value = yield env.any_of(
                [env.process(slow()), env.process(quick())]
            )
            return (index, value)

        process = env.process(waiter())
        env.run()
        assert process.result == (1, "q")

    def test_interrupt_while_waiting_on_all_of(self, env):
        pending = env.event()

        def body():
            try:
                yield env.all_of([pending])
            except Interrupt:
                return "out"

        process = env.process(body())
        env.schedule(1.0, lambda: process.interrupt())
        env.run()
        assert process.result == "out"


class TestMailbox:
    def test_put_then_get(self, env):
        mailbox = Mailbox(env)
        mailbox.put("m1")

        def reader():
            value = yield mailbox.get()
            return value

        process = env.process(reader())
        env.run()
        assert process.result == "m1"

    def test_get_then_put(self, env):
        mailbox = Mailbox(env)

        def reader():
            value = yield mailbox.get()
            return (env.now, value)

        process = env.process(reader())
        env.schedule(3.0, lambda: mailbox.put("late"))
        env.run()
        assert process.result == (3.0, "late")

    def test_fifo_ordering(self, env):
        mailbox = Mailbox(env)
        seen = []

        def reader():
            for _ in range(3):
                value = yield mailbox.get()
                seen.append(value)

        env.process(reader())
        for index in range(3):
            mailbox.put(index)
        env.run()
        assert seen == [0, 1, 2]

    def test_len_counts_pending_items(self, env):
        mailbox = Mailbox(env)
        mailbox.put("a")
        mailbox.put("b")
        assert len(mailbox) == 2
