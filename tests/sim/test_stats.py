"""Unit tests for the statistics collectors."""

import math

import pytest

from repro.sim.stats import (
    BatchMeans,
    Counter,
    StreamingHistogram,
    Tally,
    TimeWeighted,
)


class TestTally:
    def test_empty_tally(self):
        tally = Tally()
        assert tally.count == 0
        assert tally.mean == 0.0
        assert tally.variance == 0.0

    def test_mean_and_total(self):
        tally = Tally()
        for value in (1.0, 2.0, 3.0, 4.0):
            tally.record(value)
        assert tally.mean == pytest.approx(2.5)
        assert tally.total == pytest.approx(10.0)
        assert tally.count == 4

    def test_variance_matches_textbook(self):
        tally = Tally()
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for value in values:
            tally.record(value)
        mean = sum(values) / len(values)
        expected = sum((v - mean) ** 2 for v in values) / (
            len(values) - 1
        )
        assert tally.variance == pytest.approx(expected)
        assert tally.stddev == pytest.approx(math.sqrt(expected))

    def test_extremes(self):
        tally = Tally()
        for value in (3.0, -1.0, 7.0):
            tally.record(value)
        assert tally.minimum == -1.0
        assert tally.maximum == 7.0

    def test_reset_clears_everything(self):
        tally = Tally()
        tally.record(5.0)
        tally.reset()
        assert tally.count == 0
        assert tally.mean == 0.0
        assert tally.total == 0.0

    def test_single_observation_variance_zero(self):
        tally = Tally()
        tally.record(3.0)
        assert tally.variance == 0.0


class TestTimeWeighted:
    def test_constant_signal(self):
        signal = TimeWeighted(0.0, 1.0)
        assert signal.mean(10.0) == pytest.approx(1.0)

    def test_step_signal(self):
        signal = TimeWeighted(0.0, 0.0)
        signal.update(4.0, 1.0)  # off for 4s, then on
        assert signal.mean(10.0) == pytest.approx(0.6)

    def test_multiple_steps(self):
        signal = TimeWeighted(0.0, 2.0)
        signal.update(1.0, 0.0)
        signal.update(3.0, 4.0)
        # integral = 2*1 + 0*2 + 4*2 = 10 over 5s
        assert signal.mean(5.0) == pytest.approx(2.0)

    def test_reset_restarts_window(self):
        signal = TimeWeighted(0.0, 1.0)
        signal.reset(10.0)
        signal.update(12.0, 0.0)
        # Window [10, 20]: on for 2s of 10s.
        assert signal.mean(20.0) == pytest.approx(0.2)

    def test_mean_at_window_start_returns_value(self):
        signal = TimeWeighted(5.0, 3.0)
        assert signal.mean(5.0) == 3.0

    def test_advance_keeps_value(self):
        signal = TimeWeighted(0.0, 1.0)
        signal.advance(5.0)
        assert signal.value == 1.0
        assert signal.mean(5.0) == pytest.approx(1.0)


class TestCounter:
    def test_increment_default(self):
        counter = Counter()
        counter.increment()
        counter.increment()
        assert counter.count == 2

    def test_increment_amount(self):
        counter = Counter()
        counter.increment(5)
        assert counter.count == 5

    def test_reset(self):
        counter = Counter()
        counter.increment(3)
        counter.reset()
        assert counter.count == 0


class TestBatchMeans:
    def test_no_ci_with_few_batches(self):
        batches = BatchMeans(batch_size=10)
        for _ in range(15):
            batches.record(1.0)
        assert batches.num_batches == 1
        assert batches.half_width() is None

    def test_constant_data_zero_half_width(self):
        batches = BatchMeans(batch_size=5)
        for _ in range(25):
            batches.record(2.0)
        assert batches.num_batches == 5
        assert batches.mean == pytest.approx(2.0)
        assert batches.half_width() == pytest.approx(0.0)

    def test_half_width_formula(self):
        batches = BatchMeans(batch_size=1)
        for value in (1.0, 2.0, 3.0):
            batches.record(value)
        # batch means are the values themselves; t(0.975, dof=2)=4.303
        expected = 4.303 * 1.0 / math.sqrt(3)
        assert batches.half_width() == pytest.approx(expected, rel=1e-3)

    def test_reset(self):
        batches = BatchMeans(batch_size=2)
        for _ in range(10):
            batches.record(1.0)
        batches.reset()
        assert batches.num_batches == 0
        assert batches.half_width() is None

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            BatchMeans(batch_size=0)

    def test_partial_batch_excluded_from_mean(self):
        batches = BatchMeans(batch_size=2)
        batches.record(1.0)
        batches.record(1.0)  # completes a batch of mean 1
        batches.record(100.0)  # pending, not yet a batch
        assert batches.mean == pytest.approx(1.0)


class TestStreamingHistogram:
    def test_empty_percentiles_are_zero(self):
        histogram = StreamingHistogram(0.0, 10.0, num_bins=10)
        assert histogram.count == 0
        assert histogram.percentile(0.5) == 0.0

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            StreamingHistogram(0.0, 10.0, num_bins=0)
        with pytest.raises(ValueError):
            StreamingHistogram(5.0, 5.0)

    def test_invalid_fraction_rejected(self):
        histogram = StreamingHistogram(0.0, 10.0)
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    def test_percentiles_match_sorted_data(self):
        # Against exact order statistics on a known sample: with fine
        # bins the interpolation error is below one bin width.
        histogram = StreamingHistogram(0.0, 100.0, num_bins=1000)
        values = [((i * 37) % 100) + 0.5 for i in range(100)]
        for value in values:
            histogram.record(value)
        ordered = sorted(values)
        for fraction in (0.10, 0.50, 0.90, 0.99):
            # The histogram's rank convention: fraction f lands on the
            # ceil(f*n)-th smallest observation.
            rank = math.ceil(fraction * len(ordered))
            exact = ordered[max(0, rank - 1)]
            assert histogram.percentile(fraction) == pytest.approx(
                exact, abs=2 * (100.0 / 1000)
            )

    def test_median_of_uniform_grid(self):
        histogram = StreamingHistogram(0.0, 10.0, num_bins=100)
        for index in range(1000):
            histogram.record(index / 100.0)
        assert histogram.percentile(0.5) == pytest.approx(5.0, abs=0.2)

    def test_out_of_range_values_clamp(self):
        histogram = StreamingHistogram(0.0, 10.0, num_bins=10)
        for _ in range(10):
            histogram.record(-5.0)
        for _ in range(10):
            histogram.record(50.0)
        assert histogram.count == 20
        assert histogram.percentile(0.25) == 0.0  # underflow clamps low
        assert histogram.percentile(0.99) == 10.0  # overflow clamps high

    def test_reset_discards_everything(self):
        histogram = StreamingHistogram(0.0, 10.0, num_bins=10)
        histogram.record(3.0)
        histogram.record(30.0)
        histogram.reset()
        assert histogram.count == 0
        assert histogram.percentile(0.9) == 0.0

    def test_single_observation(self):
        histogram = StreamingHistogram(0.0, 60.0, num_bins=600)
        histogram.record(12.34)
        median = histogram.percentile(0.5)
        assert abs(median - 12.34) < 60.0 / 600
