"""Tests for the kernel hot-path machinery.

Covers the same-time fast lane (interleaving with equal-time heap
entries in exact sequence order), handle/timeout pooling (recycled
objects never replay stale callbacks), the per-subscription timeout
handles, AnyOf loser cleanup, and the interrupt-vs-deferred-delivery
races the transaction manager depends on.
"""

import pytest

from repro.sim.kernel import (
    Environment,
    Interrupt,
    Mailbox,
    Timeout,
)


@pytest.fixture
def env():
    return Environment(fast_lane=True)


def _pending_scheduled(env):
    """Entries in the non-fast-lane structure (heap or calendar)."""
    return len(env._cal) if env._cal is not None else len(env._heap)


class TestFastLaneOrdering:
    def test_zero_delay_goes_to_fast_lane(self, env):
        env.schedule(0.0, lambda: None)
        env.schedule_now(lambda: None)
        env.schedule(1.0, lambda: None)
        assert len(env._fast) == 2
        assert _pending_scheduled(env) == 1

    def test_heap_only_when_disabled(self):
        env = Environment(fast_lane=False)
        env.schedule(0.0, lambda: None)
        env.schedule_now(lambda: None)
        assert len(env._fast) == 0
        assert _pending_scheduled(env) == 2

    def test_same_time_heap_entry_precedes_later_fast_entry(self, env):
        # Two heap entries due at t=1.0; the first one's callback pushes
        # fast-lane work.  That work was scheduled *after* the second
        # heap entry, so FIFO tie-breaking requires the heap entry to
        # run first even though the fast lane is non-empty.
        order = []

        def first():
            order.append("h1")
            env.schedule_now(lambda: order.append("f1"))
            env.schedule_now(lambda: order.append("f2"))

        env.schedule(1.0, first)
        env.schedule(1.0, lambda: order.append("h2"))
        env.run()
        assert order == ["h1", "h2", "f1", "f2"]

    def test_fast_entry_precedes_same_time_heap_entry_by_seq(self, env):
        # Here the fast-lane entry is scheduled *before* the equal-time
        # heap entry, so it must win the tie.
        order = []

        def first():
            order.append("h1")
            env.schedule_now(lambda: order.append("f1"))
            env.schedule(0.5, lambda: order.append("h2"))
            # h2 sits in the heap at the same timestamp it will share
            # with nothing: advance via an exact-time collision instead.

        env.schedule(1.0, first)
        env.run()
        assert order == ["h1", "f1", "h2"]

    def test_schedule_order_preserved_across_lanes(self, env):
        # Interleave zero-delay (fast lane) and strictly-positive-delay
        # (heap) entries that all come due at the same instant and check
        # global schedule order is preserved exactly.
        order = []

        def at_one():
            order.append(0)
            env.schedule(0.0, order.append, 1)
            env.schedule(0.0, order.append, 2)
            env.schedule_now(order.append, 3)

        env.schedule(1.0, at_one)
        env.run()
        assert order == [0, 1, 2, 3]

    def test_matches_heap_only_kernel(self):
        # The same scripted scenario must produce the same execution
        # order with the fast lane on and off.
        def scenario(env):
            order = []

            def tick(tag):
                order.append((env.now, tag))
                if tag < 3:
                    env.schedule_now(tick, tag + 1)
                    env.schedule(0.0, tick, tag + 10)

            env.schedule(1.0, tick, 0)
            env.schedule(1.0, tick, 100)
            env.run()
            return order

        assert scenario(Environment(fast_lane=True)) == scenario(
            Environment(fast_lane=False)
        )

    def test_until_with_pending_fast_work_drains_current_time(self, env):
        seen = []
        env.schedule(1.0, lambda: env.schedule_now(seen.append, "z"))
        env.run(until=1.0)
        assert seen == ["z"]
        assert env.now == 1.0


class TestHandlePooling:
    def test_handles_are_recycled(self, env):
        env.schedule(1.0, lambda: None)
        env.run()
        assert len(env._handle_pool) == 1
        recycled = env._handle_pool[-1]
        handle = env.schedule(1.0, lambda: None)
        assert handle is recycled

    def test_recycled_handle_forgets_cancellation(self, env):
        seen = []
        handle = env.schedule(1.0, seen.append, "a")
        handle.cancel()
        env.run()
        assert seen == []
        # The cancelled handle was reaped into the pool; reusing it must
        # deliver the new callback.
        reused = env.schedule(1.0, seen.append, "b")
        assert reused is handle
        env.run()
        assert seen == ["b"]

    def test_cancelled_timer_never_fires_after_reuse(self, env):
        # A process abandons its timeout (interrupt); the timer's handle
        # is cancelled, reaped, and recycled into later scheduling.  The
        # old timeout must never resume anyone.
        resumed = []

        def sleeper():
            try:
                yield env.timeout(5.0)
                resumed.append("timer")
            except Interrupt:
                resumed.append("interrupt")

        process = env.process(sleeper())
        env.schedule(1.0, process.interrupt)
        # Plenty of churn after the cancellation so the pooled handle is
        # reused many times before t=5.0 passes.
        for step in range(50):
            env.schedule(1.0 + step * 0.1, lambda: None)
        env.run()
        assert resumed == ["interrupt"]
        assert env.now == 5.9

    def test_dispatch_count_counts_real_callbacks_only(self, env):
        handle = env.schedule(1.0, lambda: None)
        handle.cancel()
        env.schedule(2.0, lambda: None)
        env.run()
        assert env.dispatch_count == 1


class TestTimeoutPooling:
    def test_fired_timeout_is_recycled(self, env):
        def sleeper():
            yield env.timeout(1.0)

        env.process(sleeper())
        env.run()
        assert len(env._timeout_pool) == 1
        pooled = env._timeout_pool[-1]
        fresh = env.timeout(2.0)
        assert fresh is pooled
        assert fresh.delay == 2.0

    def test_recycled_timeout_rejects_negative_delay(self, env):
        def sleeper():
            yield env.timeout(1.0)

        env.process(sleeper())
        env.run()
        from repro.sim.kernel import SimulationError

        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_two_waiters_one_interrupted(self, env):
        # Both processes wait on one Timeout object; each subscription
        # has its own scheduled handle, so interrupting one must not
        # disturb the other's wakeup.
        timeout = Timeout(env, 2.0, value="pop")
        woke = []

        def waiter(tag):
            try:
                woke.append((tag, (yield timeout)))
            except Interrupt:
                woke.append((tag, "interrupted"))

        env.process(waiter("a"))
        victim = env.process(waiter("b"))
        env.schedule(1.0, victim.interrupt)
        env.run()
        assert sorted(woke) == [("a", "pop"), ("b", "interrupted")]


class TestAnyOfLoserCleanup:
    def test_losing_timer_is_cancelled(self, env):
        event = env.event()
        fired = []

        def racer():
            index, value = yield env.any_of(
                [env.timeout(100.0), event]
            )
            fired.append((index, value))

        env.process(racer())
        env.schedule(1.0, event.succeed, "won")
        env.run()
        assert fired == [(1, "won")]
        # The losing timer's heap entry was cancelled, so the run ended
        # at the event's time rather than the timer's horizon.
        assert env.now == 1.0

    def test_losing_event_drops_subscription(self, env):
        winner = env.event()
        loser = env.event()

        def racer():
            yield env.any_of([winner, loser])

        env.process(racer())
        env.schedule(1.0, winner.succeed)
        env.run()
        assert loser._waiters is None

    def test_watchers_list_emptied_on_first_fire(self, env):
        winner = env.event()
        combo = env.any_of([winner, env.event(), env.event()])

        def racer():
            yield combo

        env.process(racer())
        env.schedule(1.0, winner.succeed)
        env.run()
        assert combo._watchers == []


class TestInterruptDeliveryRaces:
    def test_interrupt_between_fire_and_delivery(self, env):
        # The event fires (delivery deferred to the next step) and the
        # waiter is interrupted at the same timestamp before delivery
        # runs.  The interrupt must win and the stale delivery must not
        # resume the process a second time.
        event = env.event()
        log = []

        def waiter():
            try:
                log.append(("value", (yield event)))
            except Interrupt as interrupt:
                log.append(("interrupt", interrupt.cause))
            return "done"

        process = env.process(waiter())

        def fire_then_interrupt():
            event.succeed("payload")
            process.interrupt("abort")

        env.schedule(1.0, fire_then_interrupt)
        env.run()
        env.check_crashes()
        assert log == [("interrupt", "abort")]
        assert not process.alive

    def test_interrupt_before_first_step(self, env):
        # Interrupting a process that has not started yet defers the
        # interrupt to the process's first step.
        log = []

        def body():
            try:
                yield env.timeout(1.0)
                log.append("timed out")
            except Interrupt:
                log.append("interrupted")

        process = env.process(body())
        process.interrupt("early")
        env.run()
        assert log == ["interrupted"]


class TestMailboxWithFastLane:
    @pytest.mark.parametrize("fast_lane", [True, False])
    def test_fifo_under_mixed_put_get(self, fast_lane):
        # Items must come out in put order no matter how gets and puts
        # interleave, with identical behaviour on both kernel paths.
        env = Environment(fast_lane=fast_lane)
        mailbox = Mailbox(env)
        received = []

        def consumer():
            for _ in range(6):
                received.append((yield mailbox.get()))

        def producer():
            mailbox.put(1)  # queued: no getter yet
            mailbox.put(2)
            yield env.timeout(1.0)
            mailbox.put(3)  # consumer now blocked on a getter
            mailbox.put(4)  # no getter (one get at a time): queued
            yield env.timeout(1.0)
            mailbox.put(5)
            mailbox.put(6)

        env.process(consumer())
        env.process(producer())
        env.run()
        env.check_crashes()
        assert received == [1, 2, 3, 4, 5, 6]

    def test_get_before_put_resolves_on_put(self, env):
        mailbox = Mailbox(env)
        received = []

        def consumer():
            received.append((yield mailbox.get()))

        env.process(consumer())
        env.schedule(1.0, mailbox.put, "late")
        env.run()
        assert received == ["late"]
