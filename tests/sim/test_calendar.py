"""Unit tests for the adaptive calendar-queue scheduler.

The contract under test (see :mod:`repro.sim.calendar`): pops come out
in exact global ``(time, seq)`` order — bit-identical to a binary
heap — across every adaptation the structure performs internally
(bucket splits, year rollovers, sparse-year widening, overflow
spills).  Ordering tests are differential against ``heapq`` on the
same operation sequence; a few white-box probes pin the adaptation
behaviour itself so a regression shows up as the geometry silently
degenerating rather than as a slow full-suite run.
"""

import heapq
import random

import pytest

from repro.sim.calendar import CalendarQueue
from repro.sim.kernel import Environment


class Handle:
    """Stand-in for the kernel's ``ScheduledCallback`` heap entry."""

    __slots__ = ("time", "seq")

    def __init__(self, time, seq):
        self.time = time
        self.seq = seq

    def __lt__(self, other):
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


def drain(queue):
    out = []
    while queue:
        head = queue.peek()
        popped = queue.pop()
        assert popped is head
        out.append(popped)
    return out


def keys(handles):
    return [(h.time, h.seq) for h in handles]


def test_empty_queue_protocol():
    queue = CalendarQueue()
    assert len(queue) == 0
    assert not queue
    assert queue.peek() is None
    with pytest.raises(IndexError):
        queue.pop()


def test_pops_in_time_seq_order():
    queue = CalendarQueue()
    rng = random.Random(0x5EED)
    handles = [
        Handle(round(rng.uniform(0.0, 50.0), 6), seq)
        for seq in range(2000)
    ]
    for handle in handles:
        queue.push(handle)
    assert keys(drain(queue)) == sorted(keys(handles))


def test_same_time_ties_pop_in_seq_order():
    queue = CalendarQueue()
    handles = [Handle(4.25, seq) for seq in range(500)]
    for handle in reversed(handles):
        queue.push(handle)
    assert drain(queue) == handles


def test_push_behind_cursor_merges_into_current_run():
    # Pushes at (or before) the head's own timestamp must land in the
    # already-sorted current run, not a passed bucket.
    queue = CalendarQueue()
    for seq in range(8):
        queue.push(Handle(float(seq), seq))
    first = queue.pop()
    assert (first.time, first.seq) == (0.0, 0)
    late = Handle(0.0, 100)  # same time as the popped head, later seq
    queue.push(late)
    mid = Handle(0.5, 101)  # inside the consumed part of the year
    queue.push(mid)
    assert queue.pop() is late
    assert queue.pop() is mid
    assert [h.seq for h in drain(queue)] == [1, 2, 3, 4, 5, 6, 7]


def test_interleaved_with_recycling_matches_heap():
    """Differential check with the kernel's handle-recycling pattern.

    Popped handles are immediately reused for later pushes with a
    rewritten ``(time, seq)`` — the reason consumption must physically
    remove entries.  The shadow model is a plain tuple heap.
    """
    queue = CalendarQueue()
    shadow = []
    rng = random.Random(0xCA1)
    now = 0.0
    seq = 0
    free = []
    for step in range(20_000):
        if shadow and rng.random() < 0.5:
            expected = heapq.heappop(shadow)
            got = queue.pop()
            assert (got.time, got.seq) == expected
            now = got.time
            free.append(got)
        else:
            # Mixed horizon: mostly near-term, some far-future (think
            # timers), occasional same-instant reschedules.
            draw = rng.random()
            if draw < 0.70:
                delay = rng.uniform(0.0, 2.0)
            elif draw < 0.95:
                delay = rng.uniform(100.0, 500.0)
            else:
                delay = 0.0
            handle = free.pop() if free else Handle(0.0, 0)
            handle.time = now + delay
            handle.seq = seq
            queue.push(handle)
            heapq.heappush(shadow, (handle.time, handle.seq))
            seq += 1
    while shadow:
        got = queue.pop()
        assert (got.time, got.seq) == heapq.heappop(shadow)
    assert queue.peek() is None


def test_far_future_events_sit_in_overflow_until_their_year():
    queue = CalendarQueue()
    near = [Handle(float(seq) * 0.1, seq) for seq in range(10)]
    far = [
        Handle(1e6 + float(seq), 1000 + seq) for seq in range(10)
    ]
    for handle in far + near:
        queue.push(handle)
    # The bootstrap year is [0, 8): every far event overflows.
    assert len(queue._overflow) == len(far)
    got = drain(queue)
    assert got == near + far
    assert not queue._overflow


def test_dense_bucket_split_narrows_geometry():
    # 5000 events inside [0, 1) — one bootstrap bucket.  Consuming
    # them must re-anchor with a much narrower width instead of
    # insertion-sorting a 5000-entry run.
    queue = CalendarQueue()
    rng = random.Random(7)
    handles = [
        Handle(rng.uniform(0.0, 1.0), seq) for seq in range(5000)
    ]
    for handle in handles:
        queue.push(handle)
    assert queue.peek() is not None  # forces the first advance/split
    assert queue._width < 1.0
    assert keys(drain(queue)) == sorted(keys(handles))


def test_ballooning_current_run_splits_on_push():
    # The run is small when sorted but balloons afterwards: pushes
    # landing at the cursor must eventually re-anchor rather than
    # degrade into O(n) insorts.
    queue = CalendarQueue()
    queue.push(Handle(0.0, 0))
    assert queue.peek() is not None
    old_width = queue._width
    for seq in range(1, 400):
        # All due inside the current (bootstrap-wide) bucket range.
        queue.push(Handle(0.5 + seq * 1e-4, seq))
    assert queue._width < old_width
    assert [h.seq for h in drain(queue)] == list(range(400))


def test_sparse_tail_widens_instead_of_scanning():
    # Exponentially spaced events: every year is sparse, so rollover
    # must widen the width geometrically (a handful of re-anchors)
    # rather than walk empty buckets.
    queue = CalendarQueue()
    handles = [
        Handle(float(4**power), power) for power in range(16)
    ]
    for handle in handles:
        queue.push(handle)
    assert drain(queue) == handles
    assert queue._width > 1.0


def test_all_events_at_one_instant_hit_the_width_floor():
    # Narrowing cannot separate identical timestamps: the split path
    # must fall back gracefully (no infinite re-anchor loop).
    queue = CalendarQueue()
    handles = [Handle(3.0, seq) for seq in range(200)]
    for handle in handles:
        queue.push(handle)
    assert drain(queue) == handles


def test_kernel_cancellation_is_lazy_and_exact():
    """Cancelled handles are reaped at pop time, never eagerly."""
    env = Environment(scheduler="calendar")
    fired = []
    keep = env.schedule(2.0, fired.append, "keep")
    dead = env.schedule(1.0, fired.append, "dead")
    env.schedule(3.0, fired.append, "tail")
    dead.cancel()
    assert keep is not dead
    env.run()
    assert fired == ["keep", "tail"]
    assert env.now == 3.0


def test_kernel_reschedule_after_cancel_reuses_handle_safely():
    env = Environment(scheduler="calendar")
    fired = []
    dead = env.schedule(5.0, fired.append, "dead")
    dead.cancel()

    def chain(label, left):
        fired.append(label)
        if left:
            env.schedule(1.0, chain, label, left - 1)

    env.schedule(1.0, chain, "tick", 3)
    env.run()
    assert fired == ["tick"] * 4
    # Reaping a cancelled entry never advances the clock.
    assert env.now == 4.0
