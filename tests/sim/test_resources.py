"""Unit tests for the CPU and disk resource disciplines."""

import random

import pytest

from repro.sim.kernel import Environment
from repro.sim.resources import CPU, Disk, DiskRequestKind


@pytest.fixture
def env():
    return Environment()


def finish_times(env, cpu, jobs):
    """Run jobs (instruction counts) started at time 0; return finish
    times in job order."""
    times = [None] * len(jobs)

    def worker(index, instructions):
        yield cpu.execute(instructions)
        times[index] = env.now

    for index, instructions in enumerate(jobs):
        env.process(worker(index, instructions))
    env.run()
    return times


class TestCpuProcessorSharing:
    def test_single_job_takes_nominal_time(self, env):
        cpu = CPU(env, mips=1.0)
        (t,) = finish_times(env, cpu, [1_000_000])
        assert t == pytest.approx(1.0)

    def test_two_equal_jobs_share_equally(self, env):
        cpu = CPU(env, mips=1.0)
        times = finish_times(env, cpu, [500_000, 500_000])
        # Each gets half the CPU: both finish at 1.0s.
        assert times[0] == pytest.approx(1.0)
        assert times[1] == pytest.approx(1.0)

    def test_short_job_finishes_first_under_sharing(self, env):
        cpu = CPU(env, mips=1.0)
        times = finish_times(env, cpu, [100_000, 1_000_000])
        # Short job: shares until it has 0.1s of service => at 0.2s.
        assert times[0] == pytest.approx(0.2)
        # Long job: 0.1s served by then, 0.9s alone => 1.1s total.
        assert times[1] == pytest.approx(1.1)

    def test_late_arrival_shares_remaining(self, env):
        cpu = CPU(env, mips=1.0)
        times = [None, None]

        def first():
            yield cpu.execute(1_000_000)
            times[0] = env.now

        def second():
            yield env.timeout(0.5)
            yield cpu.execute(250_000)
            times[1] = env.now

        env.process(first())
        env.process(second())
        env.run()
        # First runs alone 0.5s (0.5 done), shares 0.5s with second
        # (0.25 each): second done at t=1.0, first alone for the
        # remaining 0.25 => t=1.25.
        assert times[1] == pytest.approx(1.0)
        assert times[0] == pytest.approx(1.25)

    def test_mips_scales_service(self, env):
        cpu = CPU(env, mips=10.0)
        (t,) = finish_times(env, cpu, [1_000_000])
        assert t == pytest.approx(0.1)

    def test_zero_instruction_job_completes_immediately(self, env):
        cpu = CPU(env, mips=1.0)
        (t,) = finish_times(env, cpu, [0])
        assert t == pytest.approx(0.0)

    def test_work_conservation_many_jobs(self, env):
        cpu = CPU(env, mips=1.0)
        jobs = [100_000] * 10  # 1.0s of total work
        times = finish_times(env, cpu, jobs)
        assert max(times) == pytest.approx(1.0)

    def test_invalid_rate_rejected(self, env):
        with pytest.raises(ValueError):
            CPU(env, mips=0.0)


class TestCpuMessagePriority:
    def test_message_served_fifo_at_full_rate(self, env):
        cpu = CPU(env, mips=1.0)
        times = {}

        def messenger(tag, instructions):
            yield cpu.execute_message(instructions)
            times[tag] = env.now

        env.process(messenger("a", 1_000))
        env.process(messenger("b", 1_000))
        env.run()
        assert times["a"] == pytest.approx(0.001)
        assert times["b"] == pytest.approx(0.002)

    def test_message_preempts_ps_progress(self, env):
        cpu = CPU(env, mips=1.0)
        times = {}

        def ps_worker():
            yield cpu.execute(10_000)  # 10ms alone
            times["ps"] = env.now

        def messenger():
            yield env.timeout(0.005)
            yield cpu.execute_message(5_000)  # 5ms, priority
            times["msg"] = env.now

        env.process(ps_worker())
        env.process(messenger())
        env.run()
        assert times["msg"] == pytest.approx(0.010)
        # PS job: 5ms before the message + 5ms after = done at 15ms.
        assert times["ps"] == pytest.approx(0.015)

    def test_ps_completion_not_missed_during_message_burst(self, env):
        cpu = CPU(env, mips=1.0)
        done = []

        def ps_worker():
            yield cpu.execute(1_000)
            done.append(env.now)

        def messenger():
            yield cpu.execute_message(4_000)

        env.process(ps_worker())
        env.process(messenger())
        env.run()
        # Message runs 0..4ms; PS job then needs its 1ms => 5ms.
        assert done[0] == pytest.approx(0.005)


class TestCpuCancel:
    def test_cancel_pending_job(self, env):
        cpu = CPU(env, mips=1.0)
        finished = []

        def worker():
            yield cpu.execute(1_000_000)
            finished.append(env.now)

        def canceller():
            yield env.timeout(0.1)
            # Cancel the other job via its event: emulate by accessing
            # the CPU's own bookkeeping through a fresh job.
            return

        process = env.process(worker())
        env.run(until=0.1)
        # The worker waits on the CPU event; cancel it directly.
        event = process._waiting_on
        assert cpu.cancel(event) is True
        process.interrupt()
        env.run()
        assert finished == []

    def test_cancel_speeds_up_survivors(self, env):
        cpu = CPU(env, mips=1.0)
        times = {}
        events = {}

        def worker(tag):
            event = cpu.execute(1_000_000)
            events[tag] = event
            yield event
            times[tag] = env.now

        env.process(worker("a"))
        env.process(worker("b"))

        def killer():
            yield env.timeout(0.5)
            cpu.cancel(events["b"])

        env.process(killer())
        env.run()
        # a: 0.5s shared (0.25 done) + 0.75 alone = 1.25s total.
        assert times["a"] == pytest.approx(1.25)
        assert "b" not in times

    def test_cancel_unknown_event_returns_false(self, env):
        cpu = CPU(env, mips=1.0)
        assert cpu.cancel(env.event()) is False


class TestCpuUtilization:
    def test_busy_fraction_tracked(self, env):
        cpu = CPU(env, mips=1.0)

        def worker():
            yield cpu.execute(500_000)

        env.process(worker())
        env.run(until=1.0)
        assert cpu.busy_time.mean(1.0) == pytest.approx(0.5)

    def test_idle_cpu_reports_zero(self, env):
        cpu = CPU(env, mips=1.0)
        env.run(until=2.0)
        assert cpu.busy_time.mean(2.0) == 0.0


class TestDisk:
    def make_disk(self, env, lo=0.01, hi=0.01):
        return Disk(env, lo, hi, random.Random(7))

    def test_single_access_takes_service_time(self, env):
        disk = self.make_disk(env)
        done = []

        def reader():
            yield disk.access(DiskRequestKind.READ)
            done.append(env.now)

        env.process(reader())
        env.run()
        assert done[0] == pytest.approx(0.01)

    def test_fifo_within_class(self, env):
        disk = self.make_disk(env)
        order = []

        def reader(tag):
            yield disk.access(DiskRequestKind.READ)
            order.append(tag)

        for tag in range(4):
            env.process(reader(tag))
        env.run()
        assert order == [0, 1, 2, 3]

    def test_writes_jump_ahead_of_queued_reads(self, env):
        disk = self.make_disk(env)
        order = []

        def access(tag, kind):
            yield disk.access(kind)
            order.append(tag)

        # First read enters service; then two reads queue; a write
        # arriving later must be served before the queued reads.
        env.process(access("r0", DiskRequestKind.READ))
        env.process(access("r1", DiskRequestKind.READ))
        env.process(access("r2", DiskRequestKind.READ))

        def late_writer():
            yield env.timeout(0.005)
            yield disk.access(DiskRequestKind.WRITE)
            order.append("w")

        env.process(late_writer())
        env.run()
        assert order == ["r0", "w", "r1", "r2"]

    def test_in_service_request_not_cancellable(self, env):
        disk = self.make_disk(env)
        event = disk.access(DiskRequestKind.READ)
        assert disk.cancel(event) is False

    def test_queued_request_cancellable(self, env):
        disk = self.make_disk(env)
        disk.access(DiskRequestKind.READ)  # in service
        queued = disk.access(DiskRequestKind.READ)
        assert disk.cancel(queued) is True
        env.run()
        assert disk.reads_served == 1

    def test_service_time_within_bounds(self, env):
        disk = Disk(env, 0.010, 0.030, random.Random(3))
        done = []

        def reader():
            start = env.now
            yield disk.access(DiskRequestKind.READ)
            done.append(env.now - start)

        for _ in range(50):
            env.process(reader())
        env.run()
        # Serial FIFO service: each gap is one service time.
        assert all(0.0 <= t for t in done)
        assert max(done) <= 50 * 0.030 + 1e-9

    def test_utilization_full_when_backlogged(self, env):
        disk = self.make_disk(env)
        for _ in range(10):
            disk.access(DiskRequestKind.READ)
        env.run(until=0.05)
        assert disk.busy_time.mean(0.05) == pytest.approx(1.0)

    def test_invalid_time_range_rejected(self, env):
        with pytest.raises(ValueError):
            Disk(env, 0.03, 0.01, random.Random(1))

    def test_counts_by_kind(self, env):
        disk = self.make_disk(env)
        disk.access(DiskRequestKind.READ)
        disk.access(DiskRequestKind.WRITE)
        disk.access(DiskRequestKind.WRITE)
        env.run()
        assert disk.reads_served == 1
        assert disk.writes_served == 2


class TestPsJobKeying:
    """Regression tests for the _ps_jobs id()-key migration.

    The table is keyed by the Event object itself (identity hash).
    Keying by id(event) is the collision-after-GC bug class fixed for
    Timeout handles in the kernel: CPython recycles ids, so once an
    event is freed an unrelated object can be allocated at the same
    address and claim the stale entry.
    """

    def test_jobs_keyed_by_event_objects(self, env):
        cpu = CPU(env, mips=1.0)
        event = cpu.execute(1_000_000)
        assert list(cpu._ps_jobs) == [event]

    def test_gc_id_reuse_cannot_claim_foreign_entries(self, env):
        import gc

        cpu = CPU(env, mips=1.0)
        event = cpu.execute(1_000_000)
        recycled_id = id(event)
        env.run()  # completes the job; its table entry is removed
        assert cpu._ps_jobs == {}
        del event
        gc.collect()
        # Allocate fresh events; under refcounting, freed memory is
        # reused aggressively, so one frequently lands on the old id.
        # None of them may be treated as a tracked job, id match or
        # not.
        for _ in range(256):
            impostor = env.event()
            assert cpu.cancel(impostor) is False
            if id(impostor) == recycled_id:
                break
        assert cpu._ps_jobs == {}

    def test_cancel_distinguishes_live_jobs_by_identity(self, env):
        cpu = CPU(env, mips=1.0)
        tracked = cpu.execute(1_000_000)
        # A foreign event can never alias a live tracked one.
        assert cpu.cancel(env.event()) is False
        assert list(cpu._ps_jobs) == [tracked]
        assert cpu.cancel(tracked) is True
        assert cpu._ps_jobs == {}
