"""Correctness tests for the persistent on-disk result cache.

The contract under test: identical configs hit across fresh executors
and fresh processes, any config change misses, a schema-version bump
invalidates everything, and corrupted entries degrade to a recompute
rather than an error.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.config import paper_default_config
from repro.experiments import result_cache
from repro.experiments.executor import SweepExecutor
from repro.experiments.result_cache import (
    ResultCache,
    config_digest,
    default_cache_dir,
)


def tiny_config(algorithm="no_dc", think_time=30.0, seed=7):
    return paper_default_config(
        algorithm, think_time=think_time, seed=seed
    ).with_(duration=3.0, warmup=1.0).with_workload(num_terminals=4)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestConfigDigest:
    def test_identical_configs_same_digest(self):
        assert config_digest(tiny_config()) == config_digest(
            tiny_config()
        )

    @pytest.mark.parametrize(
        "changed",
        [
            lambda c: c.with_(seed=8),
            lambda c: c.with_(cc_algorithm="2pl"),
            lambda c: c.with_(duration=4.0),
            lambda c: c.with_workload(think_time=31.0),
            lambda c: c.with_database(copies=2),
            lambda c: c.with_resources(disks_per_node=3),
        ],
    )
    def test_any_field_change_changes_digest(self, changed):
        base = tiny_config()
        assert config_digest(base) != config_digest(changed(base))

    def test_digest_stable_across_processes(self):
        """The digest must not depend on PYTHONHASHSEED or any other
        per-process state — a fresh interpreter computes the same key."""
        script = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.core.config import paper_default_config\n"
            "from repro.experiments.result_cache import config_digest\n"
            "config = paper_default_config('no_dc', think_time=30.0,"
            " seed=7).with_(duration=3.0, warmup=1.0)"
            ".with_workload(num_terminals=4)\n"
            "print(config_digest(config))\n"
        )
        fresh = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            cwd=Path(__file__).resolve().parents[2],
        )
        assert fresh.stdout.strip() == config_digest(tiny_config())

    def test_schema_bump_changes_digest(self, monkeypatch):
        before = config_digest(tiny_config())
        monkeypatch.setattr(
            result_cache, "SCHEMA_VERSION",
            result_cache.SCHEMA_VERSION + 1,
        )
        assert config_digest(tiny_config()) != before


class TestResultCacheRoundTrip:
    def test_miss_then_hit(self, cache):
        config = tiny_config()
        assert cache.get(config) is None
        result = SweepExecutor(jobs=1, cache=cache).run_one(config)
        assert cache.stats.stores == 1
        roundtripped = cache.get(config)
        assert roundtripped is not None
        assert roundtripped == result

    def test_hit_across_fresh_executors(self, cache):
        """Simulates a new process: a second executor with an empty
        memo (sharing only the disk directory) must not re-simulate."""
        config = tiny_config()
        first = SweepExecutor(jobs=1, cache=cache)
        result = first.run_one(config)
        assert first.stats.simulated == 1

        second = SweepExecutor(
            jobs=1, cache=ResultCache(cache.directory)
        )
        again = second.run_one(config)
        assert second.stats.simulated == 0
        assert second.stats.disk_hits == 1
        assert again == result

    def test_changed_config_misses(self, cache):
        executor = SweepExecutor(jobs=1, cache=cache)
        executor.run_one(tiny_config(seed=7))
        assert cache.get(tiny_config(seed=8)) is None

    def test_version_bump_invalidates_everything(
        self, cache, monkeypatch
    ):
        executor = SweepExecutor(jobs=1, cache=cache)
        executor.run_one(tiny_config())
        assert cache.entry_count() == 1
        monkeypatch.setattr(
            result_cache, "SCHEMA_VERSION",
            result_cache.SCHEMA_VERSION + 1,
        )
        assert cache.get(tiny_config()) is None

    def test_corrupted_entry_recomputes_gracefully(self, cache):
        config = tiny_config()
        executor = SweepExecutor(jobs=1, cache=cache)
        result = executor.run_one(config)
        (entry,) = cache.directory.glob("*.json")
        entry.write_text("{ not json", encoding="utf-8")

        fresh = SweepExecutor(
            jobs=1, cache=ResultCache(cache.directory)
        )
        recomputed = fresh.run_one(config)
        assert fresh.stats.simulated == 1
        assert recomputed == result
        # The corrupt entry was evicted and rewritten.
        assert fresh.cache.stats.evictions == 1
        assert cache.get(config) == result

    def test_schema_stamp_mismatch_in_entry_is_a_miss(self, cache):
        config = tiny_config()
        SweepExecutor(jobs=1, cache=cache).run_one(config)
        (entry,) = cache.directory.glob("*.json")
        payload = json.loads(entry.read_text(encoding="utf-8"))
        payload["schema"] = -1
        entry.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.get(config) is None

    def test_unknown_result_field_is_a_miss(self, cache):
        config = tiny_config()
        SweepExecutor(jobs=1, cache=cache).run_one(config)
        (entry,) = cache.directory.glob("*.json")
        payload = json.loads(entry.read_text(encoding="utf-8"))
        payload["result"]["bogus_field"] = 1
        entry.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.get(config) is None

    def test_clear_and_stats(self, cache):
        executor = SweepExecutor(jobs=1, cache=cache)
        executor.run_one(tiny_config(seed=1))
        executor.run_one(tiny_config(seed=2))
        assert cache.entry_count() == 2
        assert cache.size_bytes() > 0
        assert cache.clear() == 2
        assert cache.entry_count() == 0


class TestDefaultCacheDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        assert default_cache_dir() == tmp_path / "c"

    def test_default_location(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir() == Path("results") / ".cache"


class TestWarmCacheSweep:
    def test_second_sweep_performs_zero_simulations(self, tmp_path):
        """The acceptance check: with a warm disk cache, a repeated
        sweep (fresh executor, as in a new CLI invocation) performs
        zero new simulations, observable via the stats counters."""
        from repro.experiments.scaling import scaling_config
        from repro.experiments.fidelity import Fidelity

        fidelity = Fidelity(
            name="tiny", duration=2.0, warmup=0.5,
            target_commits=0, max_duration=2.0,
            think_times=(0.0, 60.0),
        )
        configs = [
            scaling_config(fidelity, algorithm, think_time, 1)
            for algorithm in ("no_dc", "opt")
            for think_time in fidelity.think_times
        ]
        cold = SweepExecutor(
            jobs=1, cache=ResultCache(tmp_path / "cache")
        )
        first = cold.run_many(configs)
        assert cold.stats.simulated == len(configs)

        warm = SweepExecutor(
            jobs=1, cache=ResultCache(tmp_path / "cache")
        )
        second = warm.run_many(configs)
        assert warm.stats.simulated == 0
        assert warm.stats.disk_hits == len(configs)
        assert second == first
