"""Incremental invalidation: source-fingerprinted cache keys.

The contract under test: the cache key composes the schema version
with a content hash of the sim-relevant source packages (``sim/``,
``cc/``, ``core/``), so

* an experiment-layer-only edit recomputes **zero** cached points,
* a ``sim/kernel.py`` edit dirties **all** of them,
* ``prune`` reclaims exactly the entries a code change stranded,
* ``source_census`` reports how much of the cache an edit dirtied.
"""

import json
from pathlib import Path

import pytest

from repro.core.config import paper_default_config
from repro.experiments import result_cache
from repro.experiments.cli import main as cli_main
from repro.experiments.executor import SweepExecutor
from repro.experiments.result_cache import (
    ResultCache,
    config_digest,
    source_fingerprint,
)


def tiny_config(algorithm="no_dc", think_time=30.0, seed=7):
    return paper_default_config(
        algorithm, think_time=think_time, seed=seed
    ).with_(duration=2.0, warmup=0.5).with_workload(num_terminals=4)


def fake_tree(root: Path) -> None:
    """A miniature src/repro layout with sim-relevant and
    experiment-layer files."""
    for name, body in {
        "sim/kernel.py": "EVENT = 1\n",
        "sim/stats.py": "BINS = 10\n",
        "cc/locks.py": "MODES = ('S', 'X')\n",
        "core/config.py": "SEED = 42\n",
        "experiments/runner.py": "JOBS = 4\n",
        "analysis/series.py": "AXES = 2\n",
    }.items():
        path = root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body, encoding="utf-8")


class TestSourceFingerprint:
    def test_stable_for_identical_trees(self, tmp_path):
        fake_tree(tmp_path / "a")
        fake_tree(tmp_path / "b")
        assert source_fingerprint(
            tmp_path / "a"
        ) == source_fingerprint(tmp_path / "b")

    def test_experiment_layer_edit_keeps_fingerprint(self, tmp_path):
        fake_tree(tmp_path)
        before = source_fingerprint(tmp_path)
        (tmp_path / "experiments/runner.py").write_text(
            "JOBS = 8\n", encoding="utf-8"
        )
        (tmp_path / "analysis/series.py").write_text(
            "AXES = 3\n", encoding="utf-8"
        )
        assert source_fingerprint(tmp_path) == before

    @pytest.mark.parametrize(
        "edited", ["sim/kernel.py", "cc/locks.py", "core/config.py"]
    )
    def test_sim_relevant_edit_changes_fingerprint(
        self, tmp_path, edited
    ):
        fake_tree(tmp_path)
        before = source_fingerprint(tmp_path)
        (tmp_path / edited).write_text(
            "# changed\n", encoding="utf-8"
        )
        assert source_fingerprint(tmp_path) != before

    def test_new_sim_file_changes_fingerprint(self, tmp_path):
        fake_tree(tmp_path)
        before = source_fingerprint(tmp_path)
        (tmp_path / "sim/wheel.py").write_text(
            "SLOTS = 256\n", encoding="utf-8"
        )
        assert source_fingerprint(tmp_path) != before

    def test_default_is_memoized(self):
        assert source_fingerprint() == source_fingerprint()
        assert len(source_fingerprint()) == 16

    def test_digest_composes_fingerprint(self, monkeypatch):
        before = config_digest(tiny_config())
        monkeypatch.setattr(
            result_cache, "_FINGERPRINT", "0" * 16
        )
        assert config_digest(tiny_config()) != before


class TestIncrementalInvalidation:
    @pytest.fixture
    def warm_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        executor = SweepExecutor(jobs=1, cache=cache)
        for seed in (1, 2, 3):
            executor.run_one(tiny_config(seed=seed))
        assert cache.entry_count() == 3
        return cache

    def test_same_source_recomputes_zero(self, warm_cache):
        """An experiment-layer-only edit leaves the fingerprint, and
        therefore every entry, untouched."""
        executor = SweepExecutor(
            jobs=1, cache=ResultCache(warm_cache.directory)
        )
        for seed in (1, 2, 3):
            executor.run_one(tiny_config(seed=seed))
        assert executor.stats.simulated == 0
        assert executor.stats.disk_hits == 3

    def test_sim_source_change_dirties_everything(
        self, warm_cache, monkeypatch
    ):
        """A sim-relevant edit (simulated by a changed fingerprint)
        makes every stored entry unreachable."""
        monkeypatch.setattr(result_cache, "_FINGERPRINT", "f" * 16)
        executor = SweepExecutor(
            jobs=1, cache=ResultCache(warm_cache.directory)
        )
        for seed in (1, 2, 3):
            executor.run_one(tiny_config(seed=seed))
        assert executor.stats.simulated == 3
        assert executor.stats.disk_hits == 0

    def test_census_reports_dirtied_fraction(
        self, warm_cache, monkeypatch
    ):
        assert warm_cache.source_census() == {
            "fresh": 3, "stale": 0,
        }
        monkeypatch.setattr(result_cache, "_FINGERPRINT", "f" * 16)
        cache = ResultCache(warm_cache.directory)
        SweepExecutor(jobs=1, cache=cache).run_one(
            tiny_config(seed=9)
        )
        assert cache.source_census() == {"fresh": 1, "stale": 3}

    def test_prune_reclaims_only_stale_entries(
        self, warm_cache, monkeypatch
    ):
        monkeypatch.setattr(result_cache, "_FINGERPRINT", "f" * 16)
        cache = ResultCache(warm_cache.directory)
        fresh_config = tiny_config(seed=9)
        result = SweepExecutor(jobs=1, cache=cache).run_one(
            fresh_config
        )
        assert cache.entry_count() == 4
        assert cache.prune() == 3
        assert cache.entry_count() == 1
        assert cache.get(fresh_config) == result

    def test_prune_drops_corrupt_entries(self, warm_cache):
        (warm_cache.directory / "bogus.json").write_text(
            "{ not json", encoding="utf-8"
        )
        assert warm_cache.prune() == 1
        assert warm_cache.entry_count() == 3

    def test_stale_schema_is_pruned(self, warm_cache):
        entry = next(iter(warm_cache.directory.glob("*.json")))
        payload = json.loads(entry.read_text(encoding="utf-8"))
        payload["schema"] = -1
        entry.write_text(json.dumps(payload), encoding="utf-8")
        assert warm_cache.prune() == 1


class TestCacheCli:
    @pytest.fixture
    def cache_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_CACHE_DIR", str(tmp_path / "cache")
        )
        cache = ResultCache(tmp_path / "cache")
        SweepExecutor(jobs=1, cache=cache).run_one(tiny_config())
        return cache

    def test_stats_reports_freshness(self, cache_env, capsys):
        assert cli_main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries        1" in out
        assert f"source         {source_fingerprint()}" in out
        assert "fresh          1" in out
        assert "stale          0" in out

    def test_prune_verb(self, cache_env, capsys, monkeypatch):
        monkeypatch.setattr(result_cache, "_FINGERPRINT", "f" * 16)
        assert cli_main(["cache", "prune"]) == 0
        out = capsys.readouterr().out
        assert "removed 1 stale entries" in out
        assert cache_env.entry_count() == 0

    def test_prune_keeps_fresh_entries(self, cache_env, capsys):
        assert cli_main(["cache", "prune"]) == 0
        out = capsys.readouterr().out
        assert "removed 0 stale entries" in out
        assert cache_env.entry_count() == 1
