"""Executor tests for the persistent pool, chunking, and transport.

The contracts under test:

* the worker pool is spawned once per session and reused by every
  subsequent batch (no new pool, no new worker processes);
* chunked work-stealing dispatch still assembles results bit-identical
  to the serial path, in input order, for any ``jobs``;
* the memo/disk/simulated counters and the new chunk/IPC counters
  account for every grid point exactly once;
* a poisoned grid point aborts the sweep promptly, cancelling the
  chunks that have not started instead of letting the batch drain.
"""

import pytest

from repro.core.config import paper_default_config
from repro.experiments import worker_pool
from repro.experiments.executor import (
    OVERSUBSCRIBE,
    SweepExecutionError,
    SweepExecutor,
    resolve_chunk_size,
)
from repro.experiments.result_cache import ResultCache


def tiny_config(algorithm="no_dc", think_time=30.0, seed=7):
    return paper_default_config(
        algorithm, think_time=think_time, seed=seed
    ).with_(duration=2.0, warmup=0.5).with_workload(
        num_terminals=4, think_time=think_time
    )


def small_grid(seed=7):
    return [
        tiny_config(algorithm, think_time, seed=seed)
        for algorithm in ("no_dc", "opt", "2pl")
        for think_time in (0.0, 30.0)
    ]


@pytest.fixture(autouse=True)
def fresh_pool():
    """Each test starts and ends without a live pool, so pool-size and
    generation observations cannot leak between tests."""
    worker_pool.shutdown_pool()
    yield
    worker_pool.shutdown_pool()


class TestChunkSizing:
    def test_computed_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHUNK", raising=False)
        # 30 missing over 2 jobs * OVERSUBSCRIBE chunks.
        assert OVERSUBSCRIBE == 4
        assert resolve_chunk_size(30, 2) == 4
        assert resolve_chunk_size(8, 2) == 1
        assert resolve_chunk_size(1, 8) == 1
        assert resolve_chunk_size(1000, 4) == 63

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK", "9")
        assert resolve_chunk_size(30, 2, chunk=2) == 2

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK", "7")
        assert resolve_chunk_size(30, 2) == 7

    def test_bad_values_rejected(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHUNK", raising=False)
        with pytest.raises(ValueError):
            resolve_chunk_size(30, 2, chunk=0)
        monkeypatch.setenv("REPRO_CHUNK", "zero")
        with pytest.raises(ValueError):
            resolve_chunk_size(30, 2)


class TestPoolReuse:
    def test_two_batches_spawn_no_new_workers(self):
        """The acceptance check: consecutive ``run_many`` batches run
        on the same pool generation and the same worker processes."""
        executor = SweepExecutor(jobs=2)
        executor.run_many(small_grid(seed=7))
        generation = worker_pool.pool_generation()
        first_pids = set(executor.worker_pids)
        assert executor.stats.pool_batches == 1
        assert first_pids  # the pool really ran the chunks

        executor.run_many(small_grid(seed=8))
        assert worker_pool.pool_generation() == generation
        assert executor.stats.pool_batches == 2
        assert set(executor.worker_pids) == first_pids

    def test_pool_shared_across_executors(self):
        first = SweepExecutor(jobs=2)
        first.run_many(small_grid(seed=7)[:3])
        generation = worker_pool.pool_generation()
        second = SweepExecutor(jobs=2)
        second.run_many(small_grid(seed=9)[:3])
        assert worker_pool.pool_generation() == generation

    def test_pool_grows_but_never_shrinks(self):
        SweepExecutor(jobs=2).run_many(small_grid(seed=7)[:3])
        generation = worker_pool.pool_generation()
        assert worker_pool.pool_workers() == 2
        # More workers: one respawn.
        SweepExecutor(jobs=3).run_many(small_grid(seed=8)[:4])
        assert worker_pool.pool_generation() == generation + 1
        assert worker_pool.pool_workers() == 3
        # Fewer workers: the larger pool is reused as-is.
        SweepExecutor(jobs=2).run_many(small_grid(seed=9)[:3])
        assert worker_pool.pool_generation() == generation + 1
        assert worker_pool.pool_workers() == 3

    def test_shutdown_is_idempotent(self):
        worker_pool.shutdown_pool()
        worker_pool.shutdown_pool()
        assert worker_pool.pool_workers() == 0


class TestStatsUnderPool:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_bit_identical_and_fully_accounted(self, jobs, tmp_path):
        """Work-stealing completion order must not leak into results
        (input-order assembly) or the counters."""
        configs = small_grid()
        serial = SweepExecutor(jobs=1).run_many(configs)

        executor = SweepExecutor(
            jobs=jobs, cache=ResultCache(tmp_path / "cache")
        )
        results = executor.run_many(configs)
        assert [r.as_dict() for r in results] == [
            r.as_dict() for r in serial
        ]
        assert executor.stats.simulated == len(configs)
        assert executor.stats.memo_hits == 0
        assert executor.stats.disk_hits == 0
        if jobs > 1:
            assert executor.stats.pool_batches == 1
            assert executor.stats.chunks_dispatched > 0
            assert executor.stats.ipc_bytes > 0
            assert executor.stats.pool_wall_seconds > 0
            assert executor.stats.worker_compute_seconds > 0
        else:
            assert executor.stats.pool_batches == 0
            assert executor.stats.chunks_dispatched == 0
            assert executor.stats.ipc_bytes == 0
        # Workers wrote the disk entries either way.
        assert executor.cache.entry_count() == len(configs)

        # A repeat batch is all memo hits — no new chunks, no IPC.
        chunks_before = executor.stats.chunks_dispatched
        ipc_before = executor.stats.ipc_bytes
        again = executor.run_many(configs)
        assert [r.as_dict() for r in again] == [
            r.as_dict() for r in serial
        ]
        assert executor.stats.memo_hits == len(configs)
        assert executor.stats.chunks_dispatched == chunks_before
        assert executor.stats.ipc_bytes == ipc_before

    def test_chunk_accounting_matches_grid(self):
        configs = small_grid()  # 6 distinct points
        executor = SweepExecutor(jobs=2, chunk=2)
        executor.run_many(configs)
        assert executor.stats.chunks_dispatched == 3
        assert executor.stats.chunks_cancelled == 0

    def test_duplicate_configs_deduplicated(self):
        config = tiny_config()
        executor = SweepExecutor(jobs=2)
        results = executor.run_many([config] * 50)
        assert executor.stats.simulated == 1
        assert len(results) == 50
        assert all(r == results[0] for r in results)


class TestFailureSemantics:
    def test_poisoned_point_aborts_promptly(self):
        """The first failure cancels the chunks that never started —
        the sweep must not drain the whole grid behind a dead point.

        The poison passes ``validate()`` but fails at simulation
        setup, so it dies in a worker almost instantly while the other
        chunks are real simulations; chunk size 1 with jobs=2 keeps at
        most two chunks in flight, leaving the rest cancellable.
        """
        poison = tiny_config().with_(cc_algorithm="bogus")
        grid = [poison] + [
            tiny_config("opt", think_time, seed=seed)
            for seed in (1, 2, 3, 4)
            for think_time in (0.0, 30.0)
        ]
        executor = SweepExecutor(jobs=2, chunk=1)
        with pytest.raises(SweepExecutionError) as excinfo:
            executor.run_many(grid)
        assert excinfo.value.config.cc_algorithm == "bogus"
        assert executor.stats.chunks_cancelled >= 1
        assert executor.stats.simulated < len(grid) - 1

    def test_serial_failure_still_carries_config(self):
        poison = tiny_config().with_(cc_algorithm="bogus")
        with pytest.raises(SweepExecutionError) as excinfo:
            SweepExecutor(jobs=1).run_many([tiny_config(), poison])
        assert excinfo.value.config.cc_algorithm == "bogus"
