"""Fault injector integration tests on tiny end-to-end simulations.

Explicit crash/recover timelines give exact downtime accounting;
stochastic timelines prove every algorithm survives faults (commits
keep flowing, nothing is left stranded on a dead node — the kernel
leak check inside ``run()`` raises otherwise).
"""

import pytest

from repro.core.config import (
    PlacementKind,
    TransactionClassConfig,
    WorkloadConfig,
    paper_default_config,
)
from repro.core.simulation import run_simulation
from repro.faults.schedule import FaultConfig, FaultEvent

ALGORITHMS = ("2pl", "ww", "bto", "opt", "no_dc", "wd", "ir")

#: 2PC hardening knobs sized for the tiny 8s horizon below: the
#: execution timeout must exceed the natural response time (well under
#: 1s here) and the phase timeouts must allow several resend rounds.
TIMEOUTS = dict(
    execution_timeout=3.0,
    prepare_timeout=0.5,
    decision_timeout=0.5,
    ack_timeout=0.5,
)


def tiny_config(algorithm, faults, seed=7, degree=2):
    config = paper_default_config(
        algorithm,
        think_time=1.0,
        placement=PlacementKind.DECLUSTERED,
        placement_degree=degree,
        seed=seed,
    )
    workload = WorkloadConfig(
        num_terminals=16,
        think_time=1.0,
        classes=(TransactionClassConfig(write_probability=0.125),),
    )
    return config.with_(
        duration=6.0, warmup=2.0, workload=workload, faults=faults
    )


class TestExplicitTimeline:
    def run_one_outage(self, algorithm="2pl"):
        faults = FaultConfig(
            events=(
                FaultEvent(3.0, "crash", 0),
                FaultEvent(4.5, "recover", 0),
            ),
            **TIMEOUTS,
        )
        return run_simulation(tiny_config(algorithm, faults))

    def test_single_outage_is_counted_and_survived(self):
        result = self.run_one_outage()
        assert result.faults_enabled
        assert result.node_crashes == 1
        assert result.commits > 0

    def test_downtime_accounting_is_exact(self):
        """Measurement window is [2.0, 8.0]; node 0 is down exactly
        over [3.0, 4.5]."""
        result = self.run_one_outage()
        assert result.per_node_downtime[0] == pytest.approx(1.5)
        assert all(
            downtime == 0.0
            for downtime in result.per_node_downtime[1:]
        )
        assert len(result.per_node_downtime) == 8

    def test_unrecovered_crash_downtime_extends_to_sim_end(self):
        """A node that never repairs accrues downtime to the end of
        the run and still must not strand any process (the leak check
        inside run() would raise)."""
        faults = FaultConfig(
            events=(FaultEvent(5.0, "crash", 3),), **TIMEOUTS
        )
        result = run_simulation(tiny_config("2pl", faults))
        assert result.node_crashes == 1
        assert result.per_node_downtime[3] == pytest.approx(3.0)

    def test_overlapping_outages_merge(self):
        """A second crash of an already-down node neither double
        counts nor extends bookkeeping."""
        faults = FaultConfig(
            events=(
                FaultEvent(3.0, "crash", 0),
                FaultEvent(3.5, "crash", 0),
                FaultEvent(4.0, "recover", 0),
            ),
            **TIMEOUTS,
        )
        result = run_simulation(tiny_config("2pl", faults))
        assert result.node_crashes == 1
        assert result.per_node_downtime[0] == pytest.approx(1.0)


class TestArmedButIdle:
    """Attaching a FaultConfig with no actual faults arms every
    timeout and monitoring hook but must not change any reported
    simulation number: the hardening is pure observation until a
    fault actually fires."""

    _FAULT_KEYS = (
        "faults",
        "node_crashes",
        "degraded_commits",
        "availability_tput",
        "failure_abort_ratio",
        "blocked_2pc_time",
        "blocked_2pc_count",
        "messages_dropped",
    )

    @pytest.mark.parametrize("algorithm", ("2pl", "opt"))
    def test_results_match_failure_free_run(self, algorithm):
        baseline = run_simulation(
            tiny_config(algorithm, faults=None)
        ).as_dict()
        armed = run_simulation(
            tiny_config(algorithm, faults=FaultConfig())
        ).as_dict()
        assert armed["faults"] is True
        assert armed["node_crashes"] == 0
        for key in self._FAULT_KEYS:
            baseline.pop(key)
            armed.pop(key)
        assert armed == baseline


class TestStochasticTimeline:
    def stochastic_faults(self):
        return FaultConfig(
            node_mtbf=4.0,
            node_mttr=0.4,
            message_loss_probability=0.01,
            **TIMEOUTS,
        )

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_every_algorithm_survives_faults(self, algorithm):
        result = run_simulation(
            tiny_config(algorithm, self.stochastic_faults())
        )
        assert result.faults_enabled
        assert result.commits > 0
        assert len(result.per_node_downtime) == 8
        assert result.node_crashes >= 1

    def test_faulty_run_is_reproducible(self):
        config = tiny_config("bto", self.stochastic_faults())
        first = run_simulation(config)
        second = run_simulation(config)
        assert first.as_dict() == second.as_dict()
        assert (
            first.per_node_downtime == second.per_node_downtime
        )

    def test_message_loss_is_counted(self):
        faults = FaultConfig(
            message_loss_probability=0.05, **TIMEOUTS
        )
        result = run_simulation(tiny_config("2pl", faults))
        assert result.messages_dropped > 0
        assert result.commits > 0
