"""Fault schedule unit tests: determinism, merging, validation.

A :class:`FaultSchedule` must be a pure function of (config, seed):
the same inputs materialise the identical crash/recover timeline, and
every stochastic decision comes from a dedicated ``fault-*`` stream so
the workload draw sequences are untouched by fault injection.
"""

import pytest

from repro.faults.schedule import (
    CRASH,
    RECOVER,
    FaultConfig,
    FaultEvent,
    FaultSchedule,
)
from repro.sim.streams import RandomStreams


def make_schedule(config, seed=11, nodes=4, horizon=50.0):
    return FaultSchedule(config, RandomStreams(seed), nodes, horizon)


class TestMaterialisation:
    def test_same_config_and_seed_same_timeline(self):
        config = FaultConfig(node_mtbf=5.0, node_mttr=1.0)
        first = make_schedule(config)
        second = make_schedule(config)
        assert first.events == second.events
        assert first.events  # non-degenerate: something was drawn

    def test_different_seeds_differ(self):
        config = FaultConfig(node_mtbf=5.0, node_mttr=1.0)
        assert (
            make_schedule(config, seed=1).events
            != make_schedule(config, seed=2).events
        )

    def test_per_node_events_alternate_crash_recover(self):
        config = FaultConfig(node_mtbf=3.0, node_mttr=0.5)
        schedule = make_schedule(config, nodes=3, horizon=100.0)
        for node in range(3):
            kinds = [
                event.kind for event in schedule.events
                if event.node == node
            ]
            expected = [CRASH, RECOVER] * len(kinds)
            assert kinds == expected[: len(kinds)]

    def test_all_events_inside_horizon(self):
        config = FaultConfig(node_mtbf=2.0, node_mttr=0.5)
        schedule = make_schedule(config, horizon=20.0)
        assert all(event.time < 20.0 for event in schedule.events)

    def test_crashable_nodes_restricts_targets(self):
        config = FaultConfig(
            node_mtbf=1.0, node_mttr=0.2, crashable_nodes=(2,)
        )
        schedule = make_schedule(config, nodes=4, horizon=100.0)
        assert schedule.events
        assert {event.node for event in schedule.events} == {2}

    def test_crashable_nodes_beyond_machine_ignored(self):
        config = FaultConfig(
            node_mtbf=1.0, node_mttr=0.2, crashable_nodes=(1, 99)
        )
        schedule = make_schedule(config, nodes=2, horizon=100.0)
        assert {event.node for event in schedule.events} == {1}


class TestExplicitEvents:
    def test_explicit_events_sorted_with_drawn(self):
        config = FaultConfig(
            events=(
                FaultEvent(4.0, RECOVER, 1),
                FaultEvent(2.0, CRASH, 1),
                FaultEvent(3.0, CRASH, 0),
            )
        )
        schedule = make_schedule(config)
        assert schedule.events == [
            FaultEvent(2.0, CRASH, 1),
            FaultEvent(3.0, CRASH, 0),
            FaultEvent(4.0, RECOVER, 1),
        ]

    def test_recover_sorts_before_crash_at_equal_time(self):
        """A zero-length outage must be a no-op, not a stuck-down
        node, so RECOVER wins the tie."""
        config = FaultConfig(
            events=(
                FaultEvent(5.0, CRASH, 0),
                FaultEvent(5.0, RECOVER, 0),
            )
        )
        schedule = make_schedule(config)
        assert [event.kind for event in schedule.events] == [
            RECOVER, CRASH,
        ]

    def test_node_breaks_remaining_ties(self):
        config = FaultConfig(
            events=(
                FaultEvent(5.0, CRASH, 2),
                FaultEvent(5.0, CRASH, 0),
            )
        )
        schedule = make_schedule(config)
        assert [event.node for event in schedule.events] == [0, 2]

    def test_events_at_or_past_horizon_dropped(self):
        config = FaultConfig(
            events=(
                FaultEvent(49.0, CRASH, 0),
                FaultEvent(50.0, CRASH, 1),
                FaultEvent(60.0, CRASH, 2),
            )
        )
        schedule = make_schedule(config, horizon=50.0)
        assert [event.node for event in schedule.events] == [0]


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"node_mtbf": -1.0},
            {"node_mtbf": 5.0},  # mttr missing
            {"node_mtbf": 5.0, "node_mttr": 0.0},
            {"message_loss_probability": -0.1},
            {"message_loss_probability": 1.5},
            {"message_delay_probability": 2.0},
            {"message_delay_probability": 0.5},  # delay mean missing
            {"execution_timeout": 0.0},
            {"prepare_timeout": -1.0},
            {"decision_timeout": 0.0},
            {"ack_timeout": 0.0},
            {"retry_backoff_base": -0.5},
            {"retry_backoff_multiplier": 0.5},
            {"retry_backoff_base": 4.0, "retry_backoff_cap": 1.0},
            {"crashable_nodes": (0, -1)},
            {"events": (FaultEvent(1.0, "explode", 0),)},
            {"events": (FaultEvent(-1.0, CRASH, 0),)},
            {"events": (FaultEvent(1.0, CRASH, -1),)},
        ],
    )
    def test_rejects_unusable_configs(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(**kwargs).validate()

    def test_default_config_is_valid_and_inert(self):
        config = FaultConfig()
        config.validate()
        schedule = make_schedule(config)
        assert schedule.events == []

    def test_faulty_configs_are_hashable(self):
        """Sweepable and result-cacheable: frozen dataclasses."""
        config = FaultConfig(
            node_mtbf=5.0,
            node_mttr=1.0,
            events=(FaultEvent(1.0, CRASH, 0),),
        )
        assert hash(config) == hash(
            FaultConfig(
                node_mtbf=5.0,
                node_mttr=1.0,
                events=(FaultEvent(1.0, CRASH, 0),),
            )
        )


class TestStreamIsolation:
    """Fault draws must come only from ``fault-*`` streams so they
    never perturb workload or CC sequences (common random numbers)."""

    def test_only_fault_streams_are_touched(self):
        streams = RandomStreams(seed=3)
        schedule = FaultSchedule(
            FaultConfig(
                node_mtbf=2.0,
                node_mttr=0.5,
                message_loss_probability=0.5,
                message_delay_probability=0.5,
                mean_message_delay=0.1,
            ),
            streams,
            4,
            horizon=40.0,
        )
        schedule.drop_message()
        schedule.message_delay()
        assert streams._streams  # something was drawn
        assert all(
            name.startswith("fault-") for name in streams._streams
        )

    def test_workload_streams_unperturbed_by_fault_draws(self):
        quiet = RandomStreams(seed=9)
        noisy = RandomStreams(seed=9)
        schedule = FaultSchedule(
            FaultConfig(
                node_mtbf=1.0,
                node_mttr=0.2,
                message_loss_probability=0.3,
            ),
            noisy,
            8,
            horizon=100.0,
        )
        for _ in range(50):
            schedule.drop_message()
        draws = [
            (
                quiet.exponential("think-time", 1.0),
                noisy.exponential("think-time", 1.0),
            )
            for _ in range(20)
        ]
        assert all(a == b for a, b in draws)

    def test_degenerate_probabilities_consume_no_draws(self):
        streams = RandomStreams(seed=4)
        schedule = FaultSchedule(
            FaultConfig(), streams, 4, horizon=10.0
        )
        assert schedule.drop_message() is False
        assert schedule.message_delay() == 0.0
        assert streams._streams == {}


class TestMessageDecisions:
    def test_certain_loss_always_drops(self):
        streams = RandomStreams(seed=6)
        schedule = FaultSchedule(
            FaultConfig(message_loss_probability=1.0),
            streams,
            2,
            horizon=10.0,
        )
        assert all(schedule.drop_message() for _ in range(10))

    def test_delay_draws_positive_times(self):
        schedule = FaultSchedule(
            FaultConfig(
                message_delay_probability=1.0,
                mean_message_delay=0.05,
            ),
            RandomStreams(seed=8),
            2,
            horizon=10.0,
        )
        delays = [schedule.message_delay() for _ in range(10)]
        assert all(delay > 0.0 for delay in delays)

    def test_message_decisions_reproducible(self):
        config = FaultConfig(
            message_loss_probability=0.4,
            message_delay_probability=0.3,
            mean_message_delay=0.1,
        )
        first = FaultSchedule(
            config, RandomStreams(seed=12), 2, horizon=10.0
        )
        second = FaultSchedule(
            config, RandomStreams(seed=12), 2, horizon=10.0
        )
        assert [first.drop_message() for _ in range(30)] == [
            second.drop_message() for _ in range(30)
        ]
        assert [first.message_delay() for _ in range(30)] == [
            second.message_delay() for _ in range(30)
        ]
