"""Tests for the serializability auditor."""

from repro.core.audit import Auditor
from repro.core.config import TransactionClassConfig
from repro.core.database import PageId
from repro.core.transaction import (
    AccessSpec,
    Cohort,
    CohortSpec,
    PageAccess,
    Transaction,
)

PAGE_X = PageId(0, 0, 1)
PAGE_Y = PageId(0, 0, 2)


def make_cohort():
    cls = TransactionClassConfig()
    spec = AccessSpec(
        relation=0,
        cohorts=(
            CohortSpec(
                node=0,
                accesses=(PageAccess(PAGE_X, is_update=True),),
            ),
        ),
    )
    txn = Transaction(0, cls, spec, 0.0)
    txn.begin_attempt()
    return txn.cohorts[0]


class TestAuditorBookkeeping:
    def test_serial_history_is_serializable(self):
        auditor = Auditor()
        writer = make_cohort()
        auditor.on_read_granted(writer, PAGE_X)
        auditor.on_installed(writer, [PAGE_X])
        auditor.on_committed(writer.transaction)

        reader = make_cohort()
        auditor.on_read_granted(reader, PAGE_X)
        auditor.on_committed(reader.transaction)

        assert auditor.is_serializable()
        edges = auditor.serialization_edges()
        writer_key = (writer.transaction.tid, 1)
        reader_key = (reader.transaction.tid, 1)
        assert (writer_key, reader_key) in edges

    def test_write_write_order_edges(self):
        auditor = Auditor()
        first, second = make_cohort(), make_cohort()
        auditor.on_installed(first, [PAGE_X])
        auditor.on_committed(first.transaction)
        auditor.on_installed(second, [PAGE_X])
        auditor.on_committed(second.transaction)
        edges = auditor.serialization_edges()
        assert (
            (first.transaction.tid, 1),
            (second.transaction.tid, 1),
        ) in edges
        assert auditor.is_serializable()

    def test_nonserializable_cycle_detected(self):
        """Classic lost-version anomaly: each reads the version the
        other overwrites."""
        auditor = Auditor()
        a, b = make_cohort(), make_cohort()
        # Both read initial versions of X and Y.
        auditor.on_read_granted(a, PAGE_X)
        auditor.on_read_granted(b, PAGE_Y)
        # a writes Y (so b's read precedes a's write: b -> a)
        auditor.on_installed(a, [PAGE_Y])
        auditor.on_committed(a.transaction)
        # b writes X (so a's read precedes b's write: a -> b)
        auditor.on_installed(b, [PAGE_X])
        auditor.on_committed(b.transaction)
        cycle = auditor.find_cycle()
        assert cycle is not None
        assert not auditor.is_serializable()

    def test_aborted_attempt_reads_dropped(self):
        auditor = Auditor()
        cohort = make_cohort()
        auditor.on_read_granted(cohort, PAGE_X)
        auditor.on_aborted(cohort.transaction)
        assert auditor.committed_reads == {}
        assert auditor.is_serializable()

    def test_read_of_initial_version_before_first_writer(self):
        auditor = Auditor()
        reader = make_cohort()
        auditor.on_read_granted(reader, PAGE_X)
        auditor.on_committed(reader.transaction)
        writer = make_cohort()
        auditor.on_installed(writer, [PAGE_X])
        auditor.on_committed(writer.transaction)
        edges = auditor.serialization_edges()
        assert (
            (reader.transaction.tid, 1),
            (writer.transaction.tid, 1),
        ) in edges

    def test_attempts_distinguished(self):
        auditor = Auditor()
        cohort = make_cohort()
        txn = cohort.transaction
        auditor.on_read_granted(cohort, PAGE_X)
        auditor.on_aborted(txn)
        txn.begin_attempt()
        retry = txn.cohorts[0]
        auditor.on_read_granted(retry, PAGE_X)
        auditor.on_installed(retry, [PAGE_X])
        auditor.on_committed(txn)
        assert (txn.tid, 2) in auditor.committed
        assert auditor.is_serializable()
