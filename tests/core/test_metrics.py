"""Tests for the metrics collector and result record."""

import pytest

from repro.core.metrics import MetricsCollector, SimulationResult


def make_result(**overrides):
    values = dict(
        label="test",
        cc_algorithm="2pl",
        think_time=0.0,
        num_proc_nodes=8,
        placement_degree=8,
        pages_per_partition=300,
        seed=1,
        measured_duration=100.0,
        commits=500,
        aborts=50,
        throughput=5.0,
        mean_response_time=2.0,
        response_time_ci=0.1,
        abort_ratio=0.1,
        mean_blocking_time=0.5,
        blocking_count=100,
        avg_node_cpu_utilization=0.8,
        avg_disk_utilization=0.9,
        host_cpu_utilization=0.1,
        messages_sent=1000,
    )
    values.update(overrides)
    return SimulationResult(**values)


class TestMetricsCollector:
    def test_commit_recording(self):
        metrics = MetricsCollector()
        metrics.record_commit(2.0)
        metrics.record_commit(4.0)
        assert metrics.commits.count == 2
        assert metrics.response_times.mean == pytest.approx(3.0)

    def test_throughput_over_window(self):
        metrics = MetricsCollector()
        metrics.reset(10.0)
        for _ in range(50):
            metrics.record_commit(1.0)
        assert metrics.throughput(60.0) == pytest.approx(1.0)

    def test_throughput_zero_window(self):
        metrics = MetricsCollector()
        metrics.reset(5.0)
        assert metrics.throughput(5.0) == 0.0

    def test_abort_ratio(self):
        metrics = MetricsCollector()
        for _ in range(4):
            metrics.record_commit(1.0)
        metrics.record_abort()
        metrics.record_abort()
        assert metrics.abort_ratio == pytest.approx(0.5)

    def test_abort_ratio_no_commits(self):
        metrics = MetricsCollector()
        metrics.record_abort()
        assert metrics.abort_ratio == 0.0

    def test_reset_discards_warmup(self):
        metrics = MetricsCollector()
        metrics.record_commit(100.0)
        metrics.record_abort()
        metrics.record_blocking(9.0)
        metrics.reset(30.0)
        assert metrics.commits.count == 0
        assert metrics.aborts.count == 0
        assert metrics.blocking_times.count == 0

    def test_blocking_times(self):
        metrics = MetricsCollector()
        metrics.record_blocking(1.0)
        metrics.record_blocking(3.0)
        assert metrics.blocking_times.mean == pytest.approx(2.0)

    def test_abort_reasons_tracked(self):
        metrics = MetricsCollector()
        metrics.record_abort("wound")
        metrics.record_abort("wound")
        metrics.record_abort("local-deadlock")
        metrics.record_abort(None)
        assert metrics.abort_reasons == {
            "wound": 2,
            "local-deadlock": 1,
            "unknown": 1,
        }
        metrics.reset(1.0)
        assert metrics.abort_reasons == {}


class TestSimulationResult:
    def test_as_dict_roundtrip(self):
        result = make_result()
        data = result.as_dict()
        assert data["cc"] == "2pl"
        assert data["throughput"] == 5.0
        assert data["abort_ratio"] == 0.1
        assert data["messages"] == 1000

    def test_str_contains_key_metrics(self):
        text = str(make_result())
        assert "tput=5.000" in text
        assert "abort_ratio=0.100" in text


class TestResponsePercentiles:
    def test_commits_feed_the_histogram(self):
        metrics = MetricsCollector()
        for value in (1.0, 2.0, 3.0, 4.0):
            metrics.record_commit(value)
        assert metrics.response_histogram.count == 4
        median = metrics.response_histogram.percentile(0.5)
        assert 1.9 <= median <= 2.2

    def test_reset_clears_the_histogram(self):
        metrics = MetricsCollector()
        metrics.record_commit(10.0)
        metrics.reset(5.0)
        assert metrics.response_histogram.count == 0

    def test_percentile_fields_default_and_export(self):
        result = make_result()
        assert result.response_time_p50 == 0.0
        data = make_result(
            response_time_p50=1.5,
            response_time_p90=3.0,
            response_time_p99=9.0,
        ).as_dict()
        assert data["response_p50"] == 1.5
        assert data["response_p90"] == 3.0
        assert data["response_p99"] == 9.0

    def test_percentiles_ordered_in_simulation_output(self):
        # End-to-end: a short run populates ordered percentiles.
        from repro.core.config import paper_default_config

        from repro.core.simulation import run_simulation

        config = paper_default_config(
            "no_dc", think_time=1.0, seed=3
        ).with_(duration=6.0, warmup=2.0)
        result = run_simulation(config)
        assert result.commits > 0
        assert (
            0.0
            < result.response_time_p50
            <= result.response_time_p90
            <= result.response_time_p99
        )
        assert result.response_time_p50 <= 2 * result.mean_response_time
