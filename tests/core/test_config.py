"""Tests for the configuration layer — including that the defaults
reproduce the paper's Table 4."""

import pytest

from repro.core.config import (
    DatabaseConfig,
    ExecutionPattern,
    PlacementKind,
    ResourceConfig,
    SimulationConfig,
    TransactionClassConfig,
    WorkloadConfig,
    paper_default_config,
)


class TestTable4Defaults:
    """Table 4 of the paper, parameter by parameter."""

    def test_machine_shape(self):
        config = SimulationConfig()
        assert config.num_proc_nodes == 8
        assert config.resources.host_cpu_mips == 10.0
        assert config.resources.node_cpu_mips == 1.0
        assert config.resources.disks_per_node == 2

    def test_disk_times(self):
        resources = ResourceConfig()
        assert resources.min_disk_time == pytest.approx(0.010)
        assert resources.max_disk_time == pytest.approx(0.030)

    def test_cpu_costs(self):
        resources = ResourceConfig()
        assert resources.inst_per_update == 2_000
        assert resources.inst_per_startup == 2_000
        assert resources.inst_per_msg == 1_000

    def test_database_shape(self):
        database = DatabaseConfig()
        assert database.num_relations == 8
        assert database.partitions_per_relation == 8
        assert database.num_files == 64
        assert database.pages_per_partition == 300
        assert database.total_pages == 19_200

    def test_workload_shape(self):
        workload = WorkloadConfig()
        assert workload.num_terminals == 128
        assert workload.think_time == 0.0
        (cls,) = workload.classes
        assert cls.file_count == 8
        assert cls.pages_per_file == 8
        assert cls.inst_per_page == 8_000

    def test_write_probability_follows_8_writes_reading(self):
        """The paper says "64 reads ... an average of 8 writes"; the
        default write probability must make that arithmetic true."""
        (cls,) = WorkloadConfig().classes
        expected_writes = (
            cls.file_count * cls.pages_per_file * cls.write_probability
        )
        assert expected_writes == pytest.approx(8.0)

    def test_page_count_range_matches_footnote_12(self):
        """Footnote 12: cohorts access between 4 and 12 pages/partition."""
        cls = TransactionClassConfig()
        assert cls.min_pages_per_file == 4
        assert cls.max_pages_per_file == 12

    def test_detection_interval(self):
        assert SimulationConfig().detection_interval == 1.0

    def test_cc_request_cost_negligible(self):
        assert SimulationConfig().inst_per_cc_request == 0.0

    def test_default_execution_pattern_parallel(self):
        cls = TransactionClassConfig()
        assert cls.execution_pattern is ExecutionPattern.PARALLEL


class TestValidation:
    def test_valid_default_passes(self):
        SimulationConfig().validate()

    def test_degree_must_divide_partitions(self):
        config = SimulationConfig().with_database(placement_degree=3)
        with pytest.raises(ValueError):
            config.validate()

    def test_degree_cannot_exceed_nodes(self):
        config = SimulationConfig(num_proc_nodes=4).with_database(
            placement_degree=8
        )
        with pytest.raises(ValueError):
            config.validate()

    def test_class_fractions_must_sum_to_one(self):
        workload = WorkloadConfig(
            classes=(
                TransactionClassConfig(terminal_fraction=0.5),
                TransactionClassConfig(
                    name="other", terminal_fraction=0.4
                ),
            )
        )
        with pytest.raises(ValueError):
            workload.validate()

    def test_negative_think_time_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(think_time=-1.0).validate()

    def test_invalid_disk_range_rejected(self):
        resources = ResourceConfig(
            min_disk_time=0.05, max_disk_time=0.01
        )
        with pytest.raises(ValueError):
            resources.validate()

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(duration=0.0).validate()

    def test_max_duration_below_duration_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(
                duration=100.0, max_duration=50.0
            ).validate()

    def test_write_probability_bounds(self):
        with pytest.raises(ValueError):
            TransactionClassConfig(write_probability=1.5).validate()


class TestBuilders:
    def test_with_workload_replaces_field(self):
        config = SimulationConfig().with_workload(think_time=12.0)
        assert config.workload.think_time == 12.0
        assert config.num_proc_nodes == 8

    def test_with_database_replaces_field(self):
        config = SimulationConfig().with_database(
            pages_per_partition=1200
        )
        assert config.database.pages_per_partition == 1200

    def test_with_resources_replaces_field(self):
        config = SimulationConfig().with_resources(inst_per_msg=0.0)
        assert config.resources.inst_per_msg == 0.0

    def test_configs_are_hashable(self):
        a = paper_default_config("2pl", think_time=8.0)
        b = paper_default_config("2pl", think_time=8.0)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_paper_default_colocated_degree(self):
        config = paper_default_config(
            "2pl", placement=PlacementKind.COLOCATED
        )
        assert config.database.placement_degree == 1

    def test_label_mentions_key_knobs(self):
        config = paper_default_config("bto", think_time=4.0)
        label = config.label()
        assert "bto" in label
        assert "think=4" in label
