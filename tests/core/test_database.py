"""Tests for the database placement model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DatabaseConfig, PlacementKind
from repro.core.database import Database, PageId, PartitionId


def make_db(degree, nodes=8, placement=PlacementKind.DECLUSTERED):
    return Database(
        DatabaseConfig(placement=placement, placement_degree=degree),
        nodes,
    )


class TestColocatedPlacement:
    def test_all_partitions_of_relation_at_one_node(self):
        db = make_db(1, placement=PlacementKind.COLOCATED)
        for relation in range(8):
            nodes = {
                db.node_of(p) for p in db.partitions_of(relation)
            }
            assert len(nodes) == 1

    def test_relations_rotate_across_nodes(self):
        db = make_db(1, placement=PlacementKind.COLOCATED)
        homes = [
            db.node_of(PartitionId(relation, 0))
            for relation in range(8)
        ]
        assert homes == list(range(8))

    def test_effective_degree_is_one(self):
        db = make_db(1, placement=PlacementKind.COLOCATED)
        assert db.effective_degree(0) == 1


class TestDeclusteredPlacement:
    @pytest.mark.parametrize("degree", [2, 4, 8])
    def test_relation_spans_exactly_degree_nodes(self, degree):
        db = make_db(degree)
        for relation in range(8):
            assert db.effective_degree(relation) == degree

    @pytest.mark.parametrize("degree", [1, 2, 4, 8])
    def test_load_balanced_across_nodes(self, degree):
        """Every node must host the same number of partitions, so the
        aggregate load is placement-independent (the §4.3 controlled
        comparison depends on this)."""
        db = make_db(
            degree,
            placement=(
                PlacementKind.COLOCATED
                if degree == 1
                else PlacementKind.DECLUSTERED
            ),
        )
        counts = [len(db.partitions_at(node)) for node in range(8)]
        assert counts == [8] * 8

    def test_eight_way_puts_one_partition_per_node(self):
        db = make_db(8)
        for relation in range(8):
            nodes = [
                db.node_of(p) for p in db.partitions_of(relation)
            ]
            assert sorted(nodes) == list(range(8))

    def test_partition_groups_are_contiguous(self):
        db = make_db(2)
        for relation in range(8):
            nodes = [
                db.node_of(PartitionId(relation, p))
                for p in range(8)
            ]
            # First four partitions at one node, last four at another.
            assert len(set(nodes[:4])) == 1
            assert len(set(nodes[4:])) == 1
            assert nodes[0] != nodes[4]

    def test_four_node_machine_spreads_all_relations(self):
        db = Database(
            DatabaseConfig(placement_degree=4), num_proc_nodes=4
        )
        for relation in range(8):
            assert db.effective_degree(relation) == 4
        counts = [len(db.partitions_at(node)) for node in range(4)]
        assert counts == [16, 16, 16, 16]


class TestPageMapping:
    def test_page_node_matches_partition_node(self):
        db = make_db(8)
        page = PageId(3, 5, 120)
        assert db.node_of_page(page) == db.node_of(PartitionId(3, 5))

    def test_page_partition_id(self):
        page = PageId(2, 4, 17)
        assert page.partition_id == PartitionId(2, 4)

    def test_pages_per_partition_passthrough(self):
        db = make_db(8)
        assert db.pages_per_partition == 300


class TestValidation:
    def test_indivisible_degree_rejected(self):
        with pytest.raises(ValueError):
            make_db(3)

    def test_degree_above_node_count_rejected(self):
        with pytest.raises(ValueError):
            Database(
                DatabaseConfig(placement_degree=8), num_proc_nodes=4
            )


@given(
    degree=st.sampled_from([1, 2, 4, 8]),
    relations=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=50, deadline=None)
def test_property_every_partition_placed_once(degree, relations):
    config = DatabaseConfig(
        num_relations=relations,
        placement=(
            PlacementKind.COLOCATED
            if degree == 1
            else PlacementKind.DECLUSTERED
        ),
        placement_degree=degree,
    )
    db = Database(config, num_proc_nodes=8)
    placed = [
        partition
        for node in range(8)
        for partition in db.partitions_at(node)
    ]
    assert len(placed) == relations * 8
    assert len(set(placed)) == relations * 8
    for partition in placed:
        assert db.node_of(partition) in range(8)
