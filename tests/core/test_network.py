"""Tests for the network manager."""

import pytest

from repro.core.network import HOST_NODE, NetworkManager
from repro.sim.kernel import Environment
from repro.sim.resources import CPU


@pytest.fixture
def env():
    return Environment()


def make_network(env, inst_per_msg=1_000.0):
    cpus = {
        HOST_NODE: CPU(env, 10.0, name="host"),
        0: CPU(env, 1.0, name="n0"),
        1: CPU(env, 1.0, name="n1"),
    }
    return NetworkManager(env, cpus, inst_per_msg), cpus


class TestDelivery:
    def test_message_delivered_with_payload(self, env):
        network, _ = make_network(env)
        received = []
        network.post(HOST_NODE, 0, received.append, "hello")
        env.run()
        assert received == ["hello"]

    def test_delivery_is_asynchronous(self, env):
        network, _ = make_network(env)
        order = []
        network.post(HOST_NODE, 0, lambda _p: order.append("deliver"))
        order.append("after-post")
        env.run()
        assert order == ["after-post", "deliver"]

    def test_per_end_cpu_charges(self, env):
        network, cpus = make_network(env, inst_per_msg=1_000.0)
        times = []
        network.post(0, 1, lambda _p: times.append(env.now))
        env.run()
        # 1K at 1 MIPS on each end: 1ms + 1ms.
        assert times[0] == pytest.approx(0.002)

    def test_host_end_is_faster(self, env):
        network, _ = make_network(env, inst_per_msg=1_000.0)
        times = []
        network.post(HOST_NODE, 0, lambda _p: times.append(env.now))
        env.run()
        # 1K at 10 MIPS = 0.1ms, then 1K at 1 MIPS = 1ms.
        assert times[0] == pytest.approx(0.0011)

    def test_zero_cost_messages_still_asynchronous(self, env):
        network, _ = make_network(env, inst_per_msg=0.0)
        order = []
        network.post(HOST_NODE, 0, lambda _p: order.append("d"))
        order.append("p")
        env.run()
        assert order == ["p", "d"]

    def test_fifo_between_same_endpoints(self, env):
        network, _ = make_network(env)
        received = []
        for index in range(5):
            network.post(HOST_NODE, 0, received.append, index)
        env.run()
        assert received == [0, 1, 2, 3, 4]

    def test_fifo_with_zero_cost(self, env):
        network, _ = make_network(env, inst_per_msg=0.0)
        received = []
        for index in range(5):
            network.post(HOST_NODE, 0, received.append, index)
        env.run()
        assert received == [0, 1, 2, 3, 4]


class TestAccounting:
    def test_messages_counted(self, env):
        network, _ = make_network(env)
        network.post(HOST_NODE, 0, lambda _p: None)
        network.post(0, HOST_NODE, lambda _p: None)
        env.run()
        assert network.messages_sent.count == 2

    def test_intra_node_messages_free_and_uncounted(self, env):
        network, cpus = make_network(env)
        received = []
        network.post(0, 0, received.append, "local")
        env.run()
        assert received == ["local"]
        assert network.messages_sent.count == 0
        assert cpus[0].busy_time.mean(env.now or 1.0) == 0.0

    def test_message_cpu_time_visible_in_utilization(self, env):
        network, cpus = make_network(env, inst_per_msg=10_000.0)
        network.post(0, 1, lambda _p: None)
        env.run(until=1.0)
        assert cpus[0].busy_time.mean(1.0) == pytest.approx(
            0.01, rel=0.01
        )
