"""Tests for the per-node resource manager."""

import pytest

from repro.core.resource_manager import ResourceManager
from repro.sim.kernel import Environment, Interrupt
from repro.sim.streams import RandomStreams


@pytest.fixture
def env():
    return Environment()


def make_rm(env, mips=1.0, disks=2, lo=0.01, hi=0.01):
    streams = RandomStreams(3)
    return ResourceManager(
        env,
        node_id=0,
        cpu_mips=mips,
        num_disks=disks,
        min_disk_time=lo,
        max_disk_time=hi,
        disk_stream=streams.get("disk"),
        disk_choice_stream=streams.get("choice"),
        inst_per_update=2_000.0,
    )


class TestExecute:
    def test_execute_takes_scaled_time(self, env):
        rm = make_rm(env, mips=2.0)
        done = []

        def worker():
            yield from rm.execute(1_000_000)
            done.append(env.now)

        env.process(worker())
        env.run()
        assert done[0] == pytest.approx(0.5)

    def test_zero_work_is_instant_no_yield(self, env):
        rm = make_rm(env)
        done = []

        def worker():
            yield from rm.execute(0.0)
            done.append(env.now)
            yield env.timeout(0)

        env.process(worker())
        env.run()
        assert done[0] == 0.0

    def test_interrupt_cancels_residual_work(self, env):
        rm = make_rm(env)
        outcome = []

        def victim():
            try:
                yield from rm.execute(1_000_000)  # 1s
            except Interrupt:
                outcome.append(env.now)

        def bystander():
            yield from rm.execute(1_000_000)
            outcome.append(("done", env.now))

        victim_process = env.process(victim())
        env.process(bystander())
        env.schedule(0.2, lambda: victim_process.interrupt())
        env.run()
        # Victim interrupted at 0.2 (0.1s of service each so far);
        # bystander then runs alone: 0.9s more => 1.1s total.
        assert outcome[0] == pytest.approx(0.2)
        assert outcome[1][1] == pytest.approx(1.1)


class TestDisks:
    def test_disk_read_blocks_for_service(self, env):
        rm = make_rm(env)
        done = []

        def reader():
            yield from rm.disk_read()
            done.append(env.now)

        env.process(reader())
        env.run()
        assert done[0] == pytest.approx(0.01)

    def test_requests_spread_over_disks(self, env):
        rm = make_rm(env, disks=2)
        done = []

        def reader():
            yield from rm.disk_read()
            done.append(env.now)

        for _ in range(20):
            env.process(reader())
        env.run()
        served = [disk.reads_served for disk in rm.disks]
        assert sum(served) == 20
        assert min(served) >= 4  # roughly balanced random choice

    def test_interrupt_cancels_queued_read(self, env):
        rm = make_rm(env, disks=1)
        outcome = []

        def holder():
            yield from rm.disk_read()

        def victim():
            try:
                yield from rm.disk_read()
            except Interrupt:
                outcome.append("interrupted")

        env.process(holder())
        victim_process = env.process(victim())
        env.schedule(0.005, lambda: victim_process.interrupt())
        env.run()
        assert outcome == ["interrupted"]
        assert rm.disks[0].reads_served == 1  # victim's read gone

    def test_async_write_needs_no_waiter(self, env):
        rm = make_rm(env, disks=1)
        rm.initiate_async_write()
        env.run()
        assert rm.disks[0].writes_served == 1

    def test_async_writes_prioritized_over_reads(self, env):
        rm = make_rm(env, disks=1)
        order = []

        def reader(tag):
            yield from rm.disk_read()
            order.append(tag)

        env.process(reader("r0"))  # enters service
        env.process(reader("r1"))  # queued

        def writer():
            yield env.timeout(0.005)
            rm.initiate_async_write()

        env.process(writer())
        env.run()
        # The write (queued after r1) is served before r1.
        assert order == ["r0", "r1"]
        assert rm.disks[0].writes_served == 1
        # Verify via busy windows: total time = 3 services serialized.
        assert env.now == pytest.approx(0.03)


class TestStatistics:
    def test_utilizations_and_reset(self, env):
        rm = make_rm(env, disks=1)

        def load():
            yield from rm.execute(500_000)

        env.process(load())
        env.process(iter_disk(rm))
        env.run(until=1.0)
        assert rm.cpu_utilization(1.0) == pytest.approx(0.5)
        assert rm.disk_utilization(1.0) == pytest.approx(
            0.01, abs=0.005
        )
        rm.reset_statistics(1.0)
        env.run(until=2.0)
        assert rm.cpu_utilization(2.0) == 0.0
        assert rm.disk_utilization(2.0) == 0.0


def iter_disk(rm):
    yield from rm.disk_read()
