"""Tests for the workload source."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import (
    DatabaseConfig,
    ExecutionPattern,
    PlacementKind,
    TransactionClassConfig,
    WorkloadConfig,
)
from repro.core.database import Database
from repro.core.workload import Source
from repro.sim.streams import RandomStreams


def make_source(degree=8, num_terminals=128, classes=None, seed=1):
    workload = WorkloadConfig(
        num_terminals=num_terminals,
        classes=classes or (TransactionClassConfig(),),
    )
    database = Database(
        DatabaseConfig(
            placement=(
                PlacementKind.COLOCATED
                if degree == 1
                else PlacementKind.DECLUSTERED
            ),
            placement_degree=degree,
        ),
        num_proc_nodes=8,
    )
    return Source(workload, database, RandomStreams(seed))


class TestTerminalGrouping:
    def test_groups_of_sixteen(self):
        source = make_source()
        assert source.relation_of(0) == 0
        assert source.relation_of(15) == 0
        assert source.relation_of(16) == 1
        assert source.relation_of(127) == 7

    def test_transactions_stay_within_terminal_relation(self):
        source = make_source()
        for terminal in (0, 17, 33, 127):
            spec = source.generate(terminal)
            assert spec.relation == source.relation_of(terminal)
            for cohort in spec.cohorts:
                for access in cohort.accesses:
                    assert access.page.relation == spec.relation


class TestAccessDraws:
    def test_pages_per_partition_in_footnote_range(self):
        source = make_source()
        for _ in range(50):
            spec = source.generate(0)
            per_partition = {}
            for cohort in spec.cohorts:
                for access in cohort.accesses:
                    key = access.page.partition
                    per_partition[key] = per_partition.get(key, 0) + 1
            assert set(per_partition) == set(range(8))
            for count in per_partition.values():
                assert 4 <= count <= 12

    def test_pages_within_partition_distinct(self):
        source = make_source()
        for _ in range(20):
            spec = source.generate(5)
            pages = [
                access.page
                for cohort in spec.cohorts
                for access in cohort.accesses
            ]
            assert len(pages) == len(set(pages))

    def test_page_indices_in_bounds(self):
        source = make_source()
        spec = source.generate(64)
        for cohort in spec.cohorts:
            for access in cohort.accesses:
                assert 0 <= access.page.page < 300

    def test_write_fraction_near_one_eighth(self):
        source = make_source()
        reads = writes = 0
        for _ in range(200):
            spec = source.generate(0)
            reads += spec.num_reads
            writes += spec.num_updates
        assert writes / reads == pytest.approx(0.125, abs=0.02)

    def test_mean_reads_near_64(self):
        source = make_source()
        totals = [source.generate(0).num_reads for _ in range(300)]
        assert sum(totals) / len(totals) == pytest.approx(64, rel=0.05)


class TestCohortGrouping:
    def test_eight_way_spec_has_eight_cohorts(self):
        source = make_source(degree=8)
        spec = source.generate(0)
        assert len(spec.cohorts) == 8
        assert sorted(spec.nodes) == list(range(8))

    def test_one_way_spec_has_single_cohort(self):
        source = make_source(degree=1)
        spec = source.generate(0)
        assert len(spec.cohorts) == 1

    def test_cohort_accesses_live_at_cohort_node(self):
        source = make_source(degree=4)
        spec = source.generate(40)
        for cohort in spec.cohorts:
            for access in cohort.accesses:
                node = source.database.node_of_page(access.page)
                assert node == cohort.node

    def test_placement_does_not_change_drawn_pages(self):
        """Footnote 8: access streams are placement-independent."""
        pages_8way = [
            access.page
            for cohort in make_source(degree=8, seed=9)
            .generate(3).cohorts
            for access in cohort.accesses
        ]
        pages_1way = [
            access.page
            for cohort in make_source(degree=1, seed=9)
            .generate(3).cohorts
            for access in cohort.accesses
        ]
        assert sorted(pages_8way) == sorted(pages_1way)


class TestClasses:
    def test_single_class_assigned_everywhere(self):
        source = make_source()
        assert all(
            source.class_of(t).name == "default" for t in range(128)
        )

    def test_two_classes_split_by_fraction(self):
        classes = (
            TransactionClassConfig(
                name="small", terminal_fraction=0.75, pages_per_file=4
            ),
            TransactionClassConfig(
                name="big", terminal_fraction=0.25, pages_per_file=8
            ),
        )
        source = make_source(classes=classes)
        names = [source.class_of(t).name for t in range(128)]
        assert names.count("small") == 96
        assert names.count("big") == 32

    def test_file_count_smaller_than_partitions(self):
        classes = (TransactionClassConfig(file_count=3),)
        source = make_source(classes=classes)
        spec = source.generate(0)
        partitions = {
            access.page.partition
            for cohort in spec.cohorts
            for access in cohort.accesses
        }
        assert len(partitions) == 3

    def test_sequential_class_flag_respected(self):
        classes = (
            TransactionClassConfig(
                execution_pattern=ExecutionPattern.SEQUENTIAL
            ),
        )
        source = make_source(classes=classes)
        assert (
            source.class_of(0).execution_pattern
            is ExecutionPattern.SEQUENTIAL
        )


class TestTimings:
    def test_zero_think_time(self):
        source = make_source()
        assert source.think_time(0) == 0.0

    def test_positive_think_time_mean(self):
        workload = WorkloadConfig(think_time=8.0)
        database = Database(DatabaseConfig(), 8)
        source = Source(workload, database, RandomStreams(2))
        draws = [source.think_time(0) for _ in range(5_000)]
        assert sum(draws) / len(draws) == pytest.approx(8.0, rel=0.1)

    def test_page_instructions_exponential_mean(self):
        source = make_source()
        cls = TransactionClassConfig()
        draws = [
            source.page_processing_instructions(cls)
            for _ in range(5_000)
        ]
        assert sum(draws) / len(draws) == pytest.approx(
            8_000, rel=0.1
        )


@given(
    terminal=st.integers(min_value=0, max_value=127),
    seed=st.integers(min_value=0, max_value=10_000),
    degree=st.sampled_from([1, 2, 4, 8]),
)
@settings(max_examples=50, deadline=None)
def test_property_spec_well_formed(terminal, seed, degree):
    source = make_source(degree=degree, seed=seed)
    spec = source.generate(terminal)
    assert 4 * 8 <= spec.num_reads <= 12 * 8
    assert spec.num_updates <= spec.num_reads
    assert len({cohort.node for cohort in spec.cohorts}) == len(
        spec.cohorts
    )
    expected_degree = degree
    assert len(spec.cohorts) == expected_degree
