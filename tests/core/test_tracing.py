"""Tests for the tracing module (unit + wired into a simulation)."""

import pytest

from repro.core.config import paper_default_config
from repro.core.simulation import Simulation
from repro.core.tracing import EventKind, TraceEvent, Tracer


class TestTracerUnit:
    def test_emit_and_read_back(self):
        tracer = Tracer()
        tracer.emit(1.0, EventKind.ORIGINATED, tid=7, attempt=1)
        tracer.emit(
            2.0, EventKind.BLOCKED, tid=7, attempt=1, node=3
        )
        assert len(tracer) == 2
        assert tracer.events[0].kind is EventKind.ORIGINATED
        assert tracer.events[1].node == 3

    def test_capacity_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            tracer.emit(
                float(index), EventKind.ORIGINATED, index, 1
            )
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert tracer.recorded == 5
        assert tracer.events[0].tid == 2

    def test_kind_filter(self):
        tracer = Tracer(kinds={EventKind.COMMITTED})
        tracer.emit(1.0, EventKind.ORIGINATED, 1, 1)
        tracer.emit(2.0, EventKind.COMMITTED, 1, 1)
        assert len(tracer) == 1
        assert tracer.events[0].kind is EventKind.COMMITTED

    def test_per_transaction_view(self):
        tracer = Tracer()
        tracer.emit(1.0, EventKind.ORIGINATED, 1, 1)
        tracer.emit(2.0, EventKind.ORIGINATED, 2, 1)
        tracer.emit(3.0, EventKind.COMMITTED, 1, 1)
        events = tracer.for_transaction(1)
        assert [event.kind for event in events] == [
            EventKind.ORIGINATED,
            EventKind.COMMITTED,
        ]

    def test_count_and_of_kind(self):
        tracer = Tracer()
        for _ in range(3):
            tracer.emit(0.0, EventKind.ABORTED, 1, 1)
        tracer.emit(0.0, EventKind.COMMITTED, 1, 2)
        assert tracer.count(EventKind.ABORTED) == 3
        assert len(tracer.of_kind(EventKind.COMMITTED)) == 1

    def test_format_limits(self):
        tracer = Tracer()
        for index in range(5):
            tracer.emit(
                float(index), EventKind.ORIGINATED, index, 1
            )
        text = tracer.format(limit=2)
        assert len(text.splitlines()) == 2
        assert "txn 4" in text

    def test_event_str(self):
        event = TraceEvent(
            1.5, EventKind.BLOCKED, 9, 2, node=4, detail="page"
        )
        text = str(event)
        assert "txn 9.2" in text
        assert "@4" in text
        assert "blocked" in text

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(0.0, EventKind.ORIGINATED, 1, 1)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.recorded == 1


class TestTracerWired:
    @pytest.fixture(scope="class")
    def traced_run(self):
        tracer = Tracer()
        config = paper_default_config("2pl", think_time=1.0).with_(
            duration=8.0, warmup=0.0
        ).with_workload(num_terminals=16)
        result = Simulation(config, tracer=tracer).run()
        return tracer, result

    def test_commits_traced(self, traced_run):
        tracer, result = traced_run
        assert tracer.count(EventKind.COMMITTED) == result.commits

    def test_aborts_traced(self, traced_run):
        tracer, result = traced_run
        assert tracer.count(EventKind.ABORTED) == result.aborts
        assert (
            tracer.count(EventKind.RESTART_SCHEDULED)
            == result.aborts
        )

    def test_lifecycle_ordering(self, traced_run):
        tracer, result = traced_run
        committed = tracer.of_kind(EventKind.COMMITTED)
        assert committed, "need at least one committed transaction"
        tid = committed[0].tid
        kinds = [
            event.kind for event in tracer.for_transaction(tid)
        ]
        assert kinds[0] is EventKind.ORIGINATED
        assert kinds[-1] is EventKind.COMMITTED
        assert kinds.index(
            EventKind.ATTEMPT_STARTED
        ) < kinds.index(EventKind.COHORT_LOADED)
        assert kinds.index(EventKind.COHORT_DONE) < kinds.index(
            EventKind.PREPARE_SENT
        )

    def test_votes_match_prepares_for_committed(self, traced_run):
        tracer, result = traced_run
        committed_tids = {
            event.tid
            for event in tracer.of_kind(EventKind.COMMITTED)
        }
        for tid in list(committed_tids)[:5]:
            events = tracer.for_transaction(tid)
            final_attempt = max(event.attempt for event in events)
            prepares = [
                e for e in events
                if e.kind is EventKind.PREPARE_SENT
                and e.attempt == final_attempt
            ]
            votes = [
                e for e in events
                if e.kind is EventKind.VOTED
                and e.attempt == final_attempt
            ]
            assert len(prepares) == len(votes) == 8
            assert all(vote.detail is True for vote in votes)

    def test_blocked_unblocked_balance(self, traced_run):
        tracer, _result = traced_run
        blocked = tracer.count(EventKind.BLOCKED)
        unblocked = tracer.count(EventKind.UNBLOCKED)
        # Every wait resolves unless the cohort was aborted mid-wait.
        assert unblocked <= blocked
        aborted = tracer.count(EventKind.ABORTED)
        assert blocked - unblocked <= aborted * 8 + 8
