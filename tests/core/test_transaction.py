"""Tests for transaction/cohort records and timestamps."""

from repro.core.config import (
    ExecutionPattern,
    TransactionClassConfig,
)
from repro.core.database import PageId
from repro.core.transaction import (
    AccessSpec,
    CohortSpec,
    PageAccess,
    Transaction,
    TransactionState,
    make_timestamp,
)


def make_spec():
    cohort_a = CohortSpec(
        node=0,
        accesses=(
            PageAccess(PageId(0, 0, 1), is_update=False),
            PageAccess(PageId(0, 0, 2), is_update=True),
        ),
    )
    cohort_b = CohortSpec(
        node=3,
        accesses=(PageAccess(PageId(0, 3, 9), is_update=True),),
    )
    return AccessSpec(relation=0, cohorts=(cohort_a, cohort_b))


def make_txn(pattern=ExecutionPattern.PARALLEL):
    cls = TransactionClassConfig(execution_pattern=pattern)
    return Transaction(0, cls, make_spec(), origination_time=1.0)


class TestTimestamps:
    def test_unique_and_monotone_sequence(self):
        stamps = [make_timestamp(5.0) for _ in range(100)]
        assert len(set(stamps)) == 100
        assert stamps == sorted(stamps)

    def test_time_component_dominates(self):
        early = make_timestamp(1.0)
        late = make_timestamp(2.0)
        assert early < late


class TestAccessSpec:
    def test_counts(self):
        spec = make_spec()
        assert spec.num_reads == 3
        assert spec.num_updates == 2
        assert spec.nodes == (0, 3)

    def test_cohort_counts(self):
        spec = make_spec()
        assert spec.cohorts[0].num_reads == 2
        assert spec.cohorts[0].num_updates == 1


class TestTransactionLifecycle:
    def test_initial_state(self):
        txn = make_txn()
        assert txn.state is TransactionState.PENDING
        assert txn.attempt == 0
        assert txn.startup_timestamp is None

    def test_begin_attempt_builds_cohorts(self):
        txn = make_txn()
        txn.begin_attempt()
        assert txn.attempt == 1
        assert txn.state is TransactionState.RUNNING
        assert [c.node for c in txn.cohorts] == [0, 3]

    def test_restart_builds_fresh_cohorts(self):
        txn = make_txn()
        txn.begin_attempt()
        first = txn.cohorts
        txn.begin_attempt()
        assert txn.attempt == 2
        assert txn.cohorts is not first
        assert all(not c.started for c in txn.cohorts)

    def test_restart_clears_abort_state(self):
        txn = make_txn()
        txn.begin_attempt()
        txn.mark_abort("wound")
        txn.begin_attempt()
        assert not txn.abort_pending
        assert txn.abort_reason is None

    def test_mark_abort_first_reason_wins(self):
        txn = make_txn()
        txn.begin_attempt()
        txn.mark_abort("first")
        txn.mark_abort("second")
        assert txn.abort_reason == "first"

    def test_abortable_states(self):
        txn = make_txn()
        txn.begin_attempt()
        assert txn.abortable
        txn.state = TransactionState.PREPARING
        assert txn.abortable
        txn.state = TransactionState.COMMITTING
        assert not txn.abortable
        assert txn.in_second_commit_phase
        txn.state = TransactionState.ABORTING
        assert not txn.abortable

    def test_parallel_flag(self):
        assert make_txn(ExecutionPattern.PARALLEL).parallel
        assert not make_txn(ExecutionPattern.SEQUENTIAL).parallel

    def test_updated_pages(self):
        txn = make_txn()
        txn.begin_attempt()
        assert txn.cohorts[0].updated_pages == [PageId(0, 0, 2)]
        assert txn.cohorts[1].updated_pages == [PageId(0, 3, 9)]

    def test_tids_unique(self):
        tids = {make_txn().tid for _ in range(10)}
        assert len(tids) == 10
