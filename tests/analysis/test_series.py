"""Tests for figure series and table formatting."""

import pytest

from repro.analysis.series import FigureSeries, format_table


def make_series():
    series = FigureSeries(
        title="Test figure",
        x_label="think(s)",
        y_label="throughput",
        x_values=[0.0, 8.0, 120.0],
    )
    series.add_curve("2pl", [10.0, 9.0, 1.0])
    series.add_curve("opt", [5.0, None, 0.9])
    return series


class TestFigureSeries:
    def test_curve_roundtrip(self):
        series = make_series()
        assert series.curve("2pl") == [10.0, 9.0, 1.0]

    def test_value_at(self):
        series = make_series()
        assert series.value_at("2pl", 8.0) == 9.0
        assert series.value_at("opt", 8.0) is None

    def test_length_mismatch_rejected(self):
        series = make_series()
        with pytest.raises(ValueError):
            series.add_curve("bad", [1.0])

    def test_value_at_unknown_x_raises(self):
        series = make_series()
        with pytest.raises(ValueError):
            series.value_at("2pl", 3.0)


class TestFormatting:
    def test_table_contains_title_and_curves(self):
        text = format_table(make_series())
        assert "Test figure" in text
        assert "2pl" in text
        assert "opt" in text

    def test_none_rendered_as_dash(self):
        text = format_table(make_series())
        assert "-" in text.splitlines()[4]

    def test_rows_match_x_axis(self):
        lines = format_table(make_series()).splitlines()
        data_rows = lines[3:-1]
        assert len(data_rows) == 3

    def test_str_same_as_format(self):
        series = make_series()
        assert str(series) == format_table(series)

    def test_large_and_small_magnitudes(self):
        series = FigureSeries(
            title="t", x_label="x", y_label="y", x_values=[1.0]
        )
        series.add_curve("big", [12345.0])
        series.add_curve("tiny", [0.0001])
        series.add_curve("zero", [0.0])
        text = format_table(series)
        assert "12345" in text
        assert "1.00e-04" in text
