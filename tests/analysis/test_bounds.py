"""Tests for the analytic bounds — including cross-validation against
the simulator, which doubles as a resource-accounting audit."""

import pytest

from repro.analysis import bounds
from repro.core.config import paper_default_config
from repro.core.simulation import run_simulation


@pytest.fixture(scope="module")
def table4():
    return paper_default_config("no_dc", think_time=0.0)


class TestWorkloadExpectations:
    def test_reads_per_transaction(self, table4):
        assert bounds.expected_reads_per_transaction(
            table4
        ) == pytest.approx(64.0)

    def test_writes_per_transaction(self, table4):
        """The §4.1 sentence the write-probability default encodes."""
        assert bounds.expected_writes_per_transaction(
            table4
        ) == pytest.approx(8.0)


class TestCapacityBounds:
    def test_disk_bound_value(self, table4):
        # 72 accesses x 20ms over 16 disks = 11.1 txn/s.
        assert bounds.disk_bound_throughput(table4) == pytest.approx(
            16 / (72 * 0.020), rel=1e-6
        )

    def test_io_bound_design_point(self, table4):
        """Paper §4.1: disks bind before CPUs, but only just."""
        disk = bounds.disk_bound_throughput(table4)
        cpu = bounds.cpu_bound_throughput(table4)
        assert disk < cpu
        assert disk / cpu > 0.7  # "slightly" I/O-bound

    def test_upper_bound_is_min(self, table4):
        assert bounds.throughput_upper_bound(table4) == min(
            bounds.disk_bound_throughput(table4),
            bounds.cpu_bound_throughput(table4),
        )

    def test_disk_bound_scales_with_machine(self):
        small = paper_default_config("no_dc", num_proc_nodes=1)
        small = small.with_database(placement_degree=1)
        big = paper_default_config("no_dc", num_proc_nodes=8)
        assert bounds.disk_bound_throughput(
            big
        ) == pytest.approx(
            8 * bounds.disk_bound_throughput(small)
        )


class TestLongestCohort:
    def test_single_cohort_is_mean(self):
        # Degree 1: expectation of one Uniform{4..12} draw = 8.
        assert bounds.expected_longest_cohort_pages(
            8, 1
        ) == pytest.approx(8.0)

    def test_eight_cohorts_near_paper_footnote(self):
        # Footnote 12: with 8 cohorts the longest is close to 12.
        longest = bounds.expected_longest_cohort_pages(8, 8)
        assert 10.5 < longest < 12.0

    def test_monotone_in_degree(self):
        values = [
            bounds.expected_longest_cohort_pages(8, d)
            for d in (1, 2, 4, 8)
        ]
        assert values == sorted(values)


class TestCrossValidation:
    """The simulator must respect the analytic bounds."""

    def test_saturated_throughput_matches_disk_bound(self):
        config = paper_default_config("no_dc", think_time=0.0).with_(
            duration=40.0, warmup=15.0
        )
        result = run_simulation(config)
        bound = bounds.throughput_upper_bound(config)
        assert result.throughput <= bound * 1.05
        assert result.throughput >= bound * 0.85

    def test_light_load_response_time_estimate(self):
        config = paper_default_config("no_dc", think_time=300.0).with_(
            duration=200.0,
            warmup=50.0,
            target_commits=150,
            max_duration=1200.0,
        )
        result = run_simulation(config)
        estimate = bounds.light_load_response_time(config)
        assert result.mean_response_time == pytest.approx(
            estimate, rel=0.30
        )

    def test_terminal_bound_at_light_load(self):
        # Think time 30s keeps the machine lightly loaded while giving
        # enough completed cycles that exponential-think sampling noise
        # stays within the tolerance.
        config = paper_default_config("no_dc", think_time=30.0).with_(
            duration=120.0,
            warmup=30.0,
            target_commits=600,
            max_duration=900.0,
        )
        result = run_simulation(config)
        bound = bounds.terminal_bound_throughput(
            config, result.mean_response_time
        )
        assert result.throughput == pytest.approx(bound, rel=0.10)
