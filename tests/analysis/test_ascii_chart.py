"""Tests for the ASCII chart renderer."""

from repro.analysis.ascii_chart import render_chart
from repro.analysis.series import FigureSeries


def make_series():
    series = FigureSeries(
        title="Chart test",
        x_label="think(s)",
        y_label="throughput",
        x_values=[0.0, 60.0, 120.0],
    )
    series.add_curve("2pl", [10.0, 5.0, 1.0])
    series.add_curve("opt", [6.0, 4.0, 1.0])
    return series


class TestRenderChart:
    def test_contains_title_axis_and_legend(self):
        text = render_chart(make_series())
        assert "Chart test" in text
        assert "o=2pl" in text
        assert "x=opt" in text
        assert "think(s)" in text
        assert "throughput" in text

    def test_y_extremes_labelled(self):
        text = render_chart(make_series())
        assert "10" in text
        assert "1" in text

    def test_markers_plotted(self):
        text = render_chart(make_series())
        body = "\n".join(
            line for line in text.splitlines() if "|" in line
        )
        assert "o" in body
        assert "x" in body

    def test_shared_cells_marked_with_star(self):
        series = FigureSeries(
            title="overlap", x_label="x", y_label="y",
            x_values=[0.0, 1.0],
        )
        series.add_curve("a", [1.0, 2.0])
        series.add_curve("b", [1.0, 2.0])  # identical curve
        text = render_chart(series)
        assert "*" in text

    def test_constant_curve_handled(self):
        series = FigureSeries(
            title="flat", x_label="x", y_label="y",
            x_values=[0.0, 1.0],
        )
        series.add_curve("c", [3.0, 3.0])
        text = render_chart(series)
        assert "flat" in text  # no division-by-zero crash

    def test_all_none_curve(self):
        series = FigureSeries(
            title="empty", x_label="x", y_label="y",
            x_values=[0.0, 1.0],
        )
        series.add_curve("n", [None, None])
        assert "no data" in render_chart(series)

    def test_single_point_axis(self):
        series = FigureSeries(
            title="point", x_label="x", y_label="y", x_values=[1.0]
        )
        series.add_curve("p", [2.0])
        assert "no data" in render_chart(series)

    def test_dimensions_respected(self):
        text = render_chart(make_series(), width=30, height=8)
        rows = [line for line in text.splitlines() if "|" in line]
        assert len(rows) == 8
        assert all(len(row.split("|", 1)[1]) == 30 for row in rows)
