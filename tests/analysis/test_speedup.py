"""Tests for speedup and degradation arithmetic."""

import pytest

from repro.analysis.speedup import (
    percent_degradation,
    ratio_curves,
    ratio_series,
)


class TestRatioSeries:
    def test_elementwise_ratio(self):
        assert ratio_series([4.0, 9.0], [2.0, 3.0]) == [2.0, 3.0]

    def test_none_propagates(self):
        assert ratio_series([4.0, None], [2.0, 2.0]) == [2.0, None]
        assert ratio_series([4.0, 4.0], [2.0, None]) == [2.0, None]

    def test_zero_denominator_yields_none(self):
        assert ratio_series([4.0], [0.0]) == [None]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ratio_series([1.0], [1.0, 2.0])


class TestRatioCurves:
    def test_per_name_ratios(self):
        out = ratio_curves(
            {"a": [4.0], "b": [6.0]},
            {"a": [2.0], "b": [3.0]},
        )
        assert out == {"a": [2.0], "b": [2.0]}

    def test_missing_names_skipped(self):
        out = ratio_curves({"a": [4.0], "x": [1.0]}, {"a": [2.0]})
        assert out == {"a": [2.0]}


class TestPercentDegradation:
    def test_basic(self):
        out = percent_degradation([12.0], [10.0])
        assert out == [pytest.approx(20.0)]

    def test_negative_when_better_than_baseline(self):
        out = percent_degradation([8.0], [10.0])
        assert out == [pytest.approx(-20.0)]

    def test_none_and_zero_handling(self):
        assert percent_degradation([None], [10.0]) == [None]
        assert percent_degradation([5.0], [0.0]) == [None]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            percent_degradation([1.0], [])
