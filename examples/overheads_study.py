#!/usr/bin/env python3
"""System-overhead study: when do messages eat the parallelism win?

Sweeps the per-message CPU cost for the 8-way partitioned machine and
reports where the response-time advantage of 8-way over 4-way
partitioning disappears — the phenomenon behind Figures 16-17 of the
paper ("several of the concurrency control algorithms actually do worse
with 8-way parallelism than with 4-way in this case").

Run with::

    python examples/overheads_study.py
"""

from repro import paper_default_config, run_simulation
from repro.core.config import PlacementKind

THINK_TIME = 8.0
MESSAGE_COSTS = (0.0, 1_000.0, 4_000.0, 8_000.0)


def placed(algorithm, degree, inst_per_msg):
    placement = (
        PlacementKind.COLOCATED if degree == 1
        else PlacementKind.DECLUSTERED
    )
    config = paper_default_config(
        algorithm,
        think_time=THINK_TIME,
        placement=placement,
        placement_degree=degree,
    )
    return config.with_resources(
        inst_per_msg=inst_per_msg, inst_per_startup=0.0
    ).with_(duration=60.0, warmup=20.0, target_commits=300,
            max_duration=600.0)


def main() -> None:
    print(
        f"Message-cost sweep at think time {THINK_TIME:g}s "
        "(startup cost zero)\n"
    )
    for algorithm in ("2pl", "opt"):
        print(f"--- {algorithm}: response time by degree ---")
        print(
            f"{'msg cost':>10s} {'4-way rt':>10s} {'8-way rt':>10s} "
            f"{'8-way wins?':>12s}"
        )
        for cost in MESSAGE_COSTS:
            four = run_simulation(placed(algorithm, 4, cost))
            eight = run_simulation(placed(algorithm, 8, cost))
            wins = (
                "yes"
                if eight.mean_response_time
                < four.mean_response_time
                else "no"
            )
            print(
                f"{cost:10.0f} {four.mean_response_time:10.2f} "
                f"{eight.mean_response_time:10.2f} {wins:>12s}"
            )
        print()
    print(
        "As the per-message CPU cost grows, the extra coordination of "
        "8-way\ntransactions (more cohorts => more messages, and more "
        "expensive aborts)\novertakes the gain from finer parallelism "
        "— OPT crosses over first."
    )


if __name__ == "__main__":
    main()
