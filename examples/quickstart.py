#!/usr/bin/env python3
"""Quickstart: simulate the paper's database machine in ~20 lines.

Runs the Table 4 configuration (1 host + 8 processing nodes, 128
terminals, 8-way partitioned database) once per concurrency control
algorithm at a moderate load and prints the headline metrics.

Run with::

    python examples/quickstart.py
"""

from repro import paper_default_config, run_simulation

THINK_TIME = 8.0  # seconds; 0 = heaviest load, 120 = lightest


def main() -> None:
    print(
        f"Carey & Livny '89 database machine, 8 nodes, "
        f"think time {THINK_TIME:g}s\n"
    )
    header = (
        f"{'algorithm':10s} {'tput/s':>8s} {'resp(s)':>8s} "
        f"{'aborts/commit':>14s} {'disk util':>10s}"
    )
    print(header)
    print("-" * len(header))
    for algorithm in ("2pl", "bto", "ww", "opt", "no_dc"):
        config = paper_default_config(
            algorithm, think_time=THINK_TIME
        ).with_(duration=60.0, warmup=20.0)
        result = run_simulation(config)
        print(
            f"{algorithm:10s} {result.throughput:8.2f} "
            f"{result.mean_response_time:8.2f} "
            f"{result.abort_ratio:14.3f} "
            f"{result.avg_disk_utilization:10.2f}"
        )
    print(
        "\nExpected shape (paper §4): NO_DC best, then 2PL > BTO > "
        "WW > OPT,\nwith abort ratios ordered the other way around."
    )


if __name__ == "__main__":
    main()
