#!/usr/bin/env python3
"""Replication study (extension; the paper's footnote 13).

The paper's §3.1 model supports replicated files but its experiments
never exercise them.  This example does: each partition is stored at
1, 2, or 4 nodes; transactions read one copy and write all copies
(read-one/write-all).  Footnote 13 recalls that in the companion study
the optimistic algorithm beat 2PL "when several copies of each data
item needed updating and messages were expensive" — here you can watch
how much of that survives parallel-cohort execution.

Run with::

    python examples/replication_study.py [inst_per_msg]
"""

import sys

from repro import paper_default_config, run_simulation


def replicated(algorithm, copies, inst_per_msg):
    config = paper_default_config(
        algorithm, think_time=8.0
    ).with_database(copies=copies).with_resources(
        inst_per_msg=inst_per_msg
    )
    return config.with_(
        duration=60.0,
        warmup=20.0,
        target_commits=300,
        max_duration=600.0,
    )


def main() -> None:
    inst_per_msg = (
        float(sys.argv[1]) if len(sys.argv) > 1 else 4_000.0
    )
    print(
        f"Replication study: 8 nodes, think 8s, "
        f"InstPerMsg={inst_per_msg:g}\n"
    )
    print(f"{'algorithm':10s} {'copies':>7s} {'tput/s':>8s} "
          f"{'resp(s)':>8s} {'aborts/commit':>14s}")
    for algorithm in ("2pl", "opt"):
        for copies in (1, 2, 4):
            result = run_simulation(
                replicated(algorithm, copies, inst_per_msg)
            )
            print(
                f"{algorithm:10s} {copies:7d} "
                f"{result.throughput:8.2f} "
                f"{result.mean_response_time:8.2f} "
                f"{result.abort_ratio:14.3f}"
            )
        print()
    print(
        "Write-all multiplies every update across copy sites: more "
        "cohort work, more\nmessages, and (for locking) a wider "
        "write-lock footprint.  With parallel\ncohorts the locks stay "
        "local to each copy site, so 2PL holds up better here\nthan "
        "in the non-parallel setting footnote 13 describes."
    )


if __name__ == "__main__":
    main()
