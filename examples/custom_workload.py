#!/usr/bin/env python3
"""Using the library beyond the paper: a custom mixed workload.

Demonstrates the public configuration surface:

* two transaction classes — a short, update-heavy "debit-credit" class
  on 75% of the terminals and a long, read-mostly "report" class on the
  rest;
* the report class runs its cohorts sequentially (Non-Stop SQL style
  remote procedure calls) while debit-credits run in parallel;
* a 4-node machine with 4-way declustering and slower disks.

Run with::

    python examples/custom_workload.py
"""

from repro import run_simulation
from repro.core.config import (
    DatabaseConfig,
    ExecutionPattern,
    PlacementKind,
    ResourceConfig,
    SimulationConfig,
    TransactionClassConfig,
    WorkloadConfig,
)

DEBIT_CREDIT = TransactionClassConfig(
    name="debit-credit",
    terminal_fraction=0.75,
    execution_pattern=ExecutionPattern.PARALLEL,
    file_count=2,           # touches 2 of the relation's partitions
    pages_per_file=2,
    write_probability=0.9,  # nearly every page updated
    inst_per_page=4_000.0,
)

REPORT = TransactionClassConfig(
    name="report",
    terminal_fraction=0.25,
    execution_pattern=ExecutionPattern.SEQUENTIAL,
    file_count=8,           # full-relation sweep
    pages_per_file=16,
    write_probability=0.0,  # read-only
    inst_per_page=12_000.0,
)


def make_config(algorithm: str) -> SimulationConfig:
    return SimulationConfig(
        num_proc_nodes=4,
        resources=ResourceConfig(
            node_cpu_mips=2.0,
            disks_per_node=2,
            min_disk_time=0.015,
            max_disk_time=0.045,  # slower disks than the paper's
        ),
        database=DatabaseConfig(
            num_relations=4,
            partitions_per_relation=8,
            pages_per_partition=60,  # hot: reports overlap writers
            placement=PlacementKind.DECLUSTERED,
            placement_degree=4,
        ),
        workload=WorkloadConfig(
            num_terminals=96,
            think_time=1.0,
            classes=(DEBIT_CREDIT, REPORT),
        ),
        cc_algorithm=algorithm,
        duration=60.0,
        warmup=20.0,
    )


def main() -> None:
    print("Custom mixed workload: 75% debit-credit, 25% reports\n")
    for algorithm in ("2pl", "bto", "opt"):
        result = run_simulation(make_config(algorithm))
        print(
            f"{algorithm:5s} tput={result.throughput:6.2f}/s  "
            f"rt={result.mean_response_time:6.2f}s  "
            f"abort_ratio={result.abort_ratio:5.2f}  "
            f"cpu={result.avg_node_cpu_utilization:4.2f}  "
            f"disk={result.avg_disk_utilization:4.2f}"
        )
    print(
        "\nRead-only report transactions make optimistic execution "
        "riskier: a long\nreader is easily invalidated by the "
        "debit-credit stream at certification\ntime, while locking "
        "just delays the writers briefly."
    )


if __name__ == "__main__":
    main()
