#!/usr/bin/env python3
"""Partitioning / parallelism study at fixed machine size (§4.3).

Eight processing nodes throughout; each relation is either colocated at
one node (1-way: single sequential cohort per transaction) or
declustered over 2/4/8 nodes (parallel cohorts).  Shows how the degree
of intra-transaction parallelism changes response time, blocking, and
abort behaviour per algorithm — the experiment behind Figures 8-13.

Run with::

    python examples/partitioning_study.py [think_time_seconds]
"""

import sys

from repro import paper_default_config, run_simulation
from repro.core.config import PlacementKind


def placed_config(algorithm, degree, think_time):
    placement = (
        PlacementKind.COLOCATED if degree == 1
        else PlacementKind.DECLUSTERED
    )
    return paper_default_config(
        algorithm,
        think_time=think_time,
        placement=placement,
        placement_degree=degree,
    ).with_(
        duration=90.0,
        warmup=30.0,
        target_commits=400,
        max_duration=900.0,
    )


def main() -> None:
    think_time = float(sys.argv[1]) if len(sys.argv) > 1 else 24.0
    print(
        f"Partitioning study: 8 nodes, think time {think_time:g}s, "
        "small database\n"
    )
    for algorithm in ("2pl", "opt", "no_dc"):
        print(f"--- {algorithm} ---")
        base_rt = None
        for degree in (1, 2, 4, 8):
            result = run_simulation(
                placed_config(algorithm, degree, think_time)
            )
            if base_rt is None:
                base_rt = result.mean_response_time
            speedup = base_rt / result.mean_response_time
            print(
                f"  {degree}-way: rt={result.mean_response_time:7.2f}s"
                f" (x{speedup:5.2f})"
                f"  abort_ratio={result.abort_ratio:5.2f}"
                f"  blocking={result.mean_blocking_time:6.3f}s"
            )
        print()
    print(
        "2PL turns parallelism into shorter lock hold times (blocking "
        "shrinks with\ndegree), while OPT pays for parallelism with "
        "expensive distributed aborts —\nthe contrast at the heart of "
        "the paper's §4.3."
    )


if __name__ == "__main__":
    main()
