#!/usr/bin/env python3
"""Machine-size scaling study (the paper's §4.2 in miniature).

Holds the 128-terminal workload fixed while growing the machine from 1
to 8 processing nodes (repartitioning the database to match), then
reports throughput and response-time speedups for 2PL and the NO_DC
baseline — the experiment behind Figures 2-5.

Run with::

    python examples/scaling_study.py [think_time_seconds]
"""

import sys

from repro import paper_default_config, run_simulation
from repro.core.config import PlacementKind


def machine_config(algorithm, nodes, think_time):
    """One host + ``nodes`` processing nodes, data spread to match."""
    placement = (
        PlacementKind.COLOCATED if nodes == 1
        else PlacementKind.DECLUSTERED
    )
    return paper_default_config(
        algorithm,
        think_time=think_time,
        num_proc_nodes=nodes,
        placement=placement,
        placement_degree=nodes,
    ).with_(
        duration=90.0,
        warmup=30.0,
        target_commits=400,
        max_duration=900.0,
    )


def main() -> None:
    think_time = float(sys.argv[1]) if len(sys.argv) > 1 else 24.0
    print(f"Scaling study at think time {think_time:g}s\n")
    for algorithm in ("no_dc", "2pl"):
        print(f"--- {algorithm} ---")
        baseline = None
        for nodes in (1, 2, 4, 8):
            result = run_simulation(
                machine_config(algorithm, nodes, think_time)
            )
            if baseline is None:
                baseline = result
            tput_speedup = result.throughput / baseline.throughput
            rt_speedup = (
                baseline.mean_response_time
                / result.mean_response_time
            )
            print(
                f"  {nodes} node(s): tput={result.throughput:6.2f}/s "
                f"(x{tput_speedup:5.2f})  "
                f"rt={result.mean_response_time:7.2f}s "
                f"(x{rt_speedup:6.2f})"
            )
        print()
    print(
        "At moderate loads the response-time speedup far exceeds the "
        "node count:\nthe big machine gains from extra capacity AND "
        "intra-transaction parallelism\n(the paper's most striking "
        "result, §4.2)."
    )


if __name__ == "__main__":
    main()
