"""Shared benchmark harness.

Every benchmark regenerates one of the paper's figures and prints the
table that corresponds to it, so ``pytest benchmarks/ --benchmark-only``
doubles as the full reproduction run.  Underlying simulations are
memoized per process (the figures that share a sweep pay for it once —
the first figure of each group carries the cost in its timing), and
missing sweep points fan out over a process pool sized by
``$REPRO_JOBS`` (default: all cores; set ``REPRO_JOBS=1`` to time the
serial path).  The persistent disk cache stays detached here so every
benchmark session measures real simulation time.

``REPRO_FIDELITY`` selects the run length: ``bench`` (default here),
``smoke``, ``quick``, or ``full`` (the EXPERIMENTS.md setting).
"""

import pytest

from repro.analysis.series import format_table
from repro.experiments.fidelity import Fidelity
from repro.experiments.registry import get_experiment


@pytest.fixture(scope="session")
def fidelity():
    return Fidelity.from_env(default="bench")


@pytest.fixture
def run_experiment(fidelity, benchmark, capsys):
    """Run one registered experiment under pytest-benchmark.

    Single round/iteration: a figure regeneration is minutes of
    simulation, not a microbenchmark.
    """

    def run(experiment_id):
        experiment = get_experiment(experiment_id)
        figures = benchmark.pedantic(
            experiment.run, args=(fidelity,), rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            for figure in figures:
                print(format_table(figure))
                print()
        return figures

    return run
