"""Figure 5: 8-node/1-node response-time speedup vs think time.

Regenerates the figure via the experiment registry ("fig5") and
prints the table; the benchmark time is the wall-clock cost of the
underlying simulation sweep (shared sweeps are memoized, so the first
figure of a group carries the cost).  Set REPRO_FIDELITY=full for the
EXPERIMENTS.md-quality run.
"""


def test_fig05_response_speedup(run_experiment):
    figures = run_experiment("fig5")
    (figure,) = figures
    curve = figure.curve("no_dc")
    # The hallmark hump: mid-load speedups far exceed the machine-size
    # ratio of 8 (the paper reports over 100 for NO_DC).
    assert max(v for v in curve if v is not None) > 8.0
