"""Figure 16: speedup vs degree with 4K-instruction messages, think 0.

Regenerates the figure via the experiment registry ("fig16") and
prints the table; the benchmark time is the wall-clock cost of the
underlying simulation sweep (shared sweeps are memoized, so the first
figure of a group carries the cost).  Set REPRO_FIDELITY=full for the
EXPERIMENTS.md-quality run.
"""


def test_fig16_msg4k_tt0(run_experiment):
    figures = run_experiment("fig16")
    (figure,) = figures
    # Expensive messages flatten the NO_DC curve relative to Fig 14.
    no_dc = [v for v in figure.curve("no_dc") if v is not None]
    assert max(no_dc) < 1.6
