"""Figure 10: % response-time degradation vs NO_DC, 8-way.

Regenerates the figure via the experiment registry ("fig10") and
prints the table; the benchmark time is the wall-clock cost of the
underlying simulation sweep (shared sweeps are memoized, so the first
figure of a group carries the cost).  Set REPRO_FIDELITY=full for the
EXPERIMENTS.md-quality run.
"""


def test_fig10_degradation_8way(run_experiment):
    figures = run_experiment("fig10")
    (figure,) = figures
    assert "no_dc" not in figure.curves
    # OPT suffers the largest degradation under heavy load.
    heavy = {n: c[0] for n, c in figure.curves.items()}
    assert heavy["opt"] >= heavy["2pl"]
