"""Figure 6: disk utilizations underlying the scaling speedups.

Regenerates the figure via the experiment registry ("fig6") and
prints the table; the benchmark time is the wall-clock cost of the
underlying simulation sweep (shared sweeps are memoized, so the first
figure of a group carries the cost).  Set REPRO_FIDELITY=full for the
EXPERIMENTS.md-quality run.
"""


def test_fig06_disk_utilization(run_experiment):
    figures = run_experiment("fig6")
    for figure in figures:
        for curve in figure.curves.values():
            assert all(0.0 <= v <= 1.0 for v in curve)
    # Heaviest load saturates the disks on the small machine.
    assert figures[0].curve("no_dc")[0] > 0.9
