"""Figure 15: speedup vs degree of partitioning, no overheads, think 8s.

Regenerates the figure via the experiment registry ("fig15") and
prints the table; the benchmark time is the wall-clock cost of the
underlying simulation sweep (shared sweeps are memoized, so the first
figure of a group carries the cost).  Set REPRO_FIDELITY=full for the
EXPERIMENTS.md-quality run.
"""


def test_fig15_overhead_free_tt8(run_experiment):
    figures = run_experiment("fig15")
    (figure,) = figures
    # With the load lightened, partitioning starts paying off.
    assert figure.curve("no_dc")[-1] > 1.1
