"""Figure 17: speedup vs degree with 4K-instruction messages, think 8s.

Regenerates the figure via the experiment registry ("fig17") and
prints the table; the benchmark time is the wall-clock cost of the
underlying simulation sweep (shared sweeps are memoized, so the first
figure of a group carries the cost).  Set REPRO_FIDELITY=full for the
EXPERIMENTS.md-quality run.
"""


def test_fig17_msg4k_tt8(run_experiment):
    figures = run_experiment("fig17")
    (figure,) = figures
    # The paper's crossover: with 4K messages, 8-way no longer beats
    # 4-way for the abort-heavy algorithms (OPT in particular).
    opt = figure.curve("opt")
    assert opt[-1] <= opt[-2] * 1.15
