"""Model ablation: sequential (RPC-chain) vs parallel cohort execution.

Regenerates the figure via the experiment registry ("seq-vs-par") and
prints the table; the benchmark time is the wall-clock cost of the
underlying simulation sweep (shared sweeps are memoized, so the first
figure of a group carries the cost).  Set REPRO_FIDELITY=full for the
EXPERIMENTS.md-quality run.
"""


def test_ablation_seq_vs_par(run_experiment):
    figures = run_experiment("seq-vs-par")
    (figure,) = figures
    # At the lightest load, parallel cohorts beat sequential chains.
    seq = figure.curve("no_dc-seq")[-1]
    par = figure.curve("no_dc-par")[-1]
    assert par < seq
