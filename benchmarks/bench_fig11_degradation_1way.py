"""Figure 11: % response-time degradation vs NO_DC, 1-way.

Regenerates the figure via the experiment registry ("fig11") and
prints the table; the benchmark time is the wall-clock cost of the
underlying simulation sweep (shared sweeps are memoized, so the first
figure of a group carries the cost).  Set REPRO_FIDELITY=full for the
EXPERIMENTS.md-quality run.
"""


def test_fig11_degradation_1way(run_experiment):
    figures = run_experiment("fig11")
    (figure,) = figures
    heavy = {n: c[0] for n, c in figure.curves.items()}
    assert heavy["opt"] >= heavy["2pl"]
