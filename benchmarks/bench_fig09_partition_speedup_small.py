"""Figure 9: 8-way/1-way response-time speedup, smaller database.

Regenerates the figure via the experiment registry ("fig9") and
prints the table; the benchmark time is the wall-clock cost of the
underlying simulation sweep (shared sweeps are memoized, so the first
figure of a group carries the cost).  Set REPRO_FIDELITY=full for the
EXPERIMENTS.md-quality run.
"""


def test_fig09_partition_speedup_small(run_experiment):
    figures = run_experiment("fig9")
    (figure,) = figures
    assert figure.curve("no_dc")[-1] > 3.0
    # Little to gain at think 0 where the machine is saturated.
    assert figure.curve("no_dc")[0] < 2.0
