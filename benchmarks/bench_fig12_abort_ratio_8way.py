"""Figure 12: abort ratios, 8-way partitioning, smaller database.

Regenerates the figure via the experiment registry ("fig12") and
prints the table; the benchmark time is the wall-clock cost of the
underlying simulation sweep (shared sweeps are memoized, so the first
figure of a group carries the cost).  Set REPRO_FIDELITY=full for the
EXPERIMENTS.md-quality run.
"""


def test_fig12_abort_ratio_8way(run_experiment):
    figures = run_experiment("fig12")
    (figure,) = figures
    heavy = {n: c[0] for n, c in figure.curves.items()}
    # The paper's ordering: OPT > WW > BTO > 2PL.
    assert heavy["opt"] > heavy["2pl"]
    assert heavy["ww"] > heavy["bto"]
