"""Scheduler benchmark: heap vs calendar queue across populations.

A synthetic kernel-only workload keeps a fixed population of pending
self-rescheduling timers alive — 10³, 10⁴ and 10⁵ of them — and
measures dispatched events per wall-clock second under both pending-
event structures (``REPRO_KERNEL_SCHED=heap|calendar``).  The binary
heap pays O(log n) Python-level ``__lt__`` calls per operation, so its
rate sags as the population grows; the calendar queue's amortized-O(1)
operations hold the rate roughly flat.  This is the micro-benchmark
behind the scaleout acceptance numbers (see
``benchmarks/bench_scaleout.py`` for the full-simulator version).

Records are appended to ``BENCH_kernel_sched.json`` at the repo root
(override with ``$REPRO_BENCH_OUT``).  Rates are machine-dependent, so
each record also carries the interpreter *spin rate* and the
normalized ratio ``events_per_spin``; the committed baseline
(``benchmarks/baselines/kernel_sched.json``) stores the calendar
scheduler's normalized rate per population and the regression check
compares against it with a 30% tolerance.  The check is enforced when
``$REPRO_BENCH_ENFORCE`` is set (CI); local runs just record.

Run standalone::

    python benchmarks/bench_kernel_sched.py

or through pytest (same JSON record)::

    pytest benchmarks/bench_kernel_sched.py -q
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from pathlib import Path

# Standalone-script convenience: make src/ importable without
# PYTHONPATH (pytest runs get it from the usual test environment).
try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(
        0, str(Path(__file__).resolve().parents[1] / "src")
    )

from repro.sim.kernel import Environment

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "BENCH_kernel_sched.json"
BASELINE_PATH = (
    Path(__file__).resolve().parent / "baselines" / "kernel_sched.json"
)

#: Allowed normalized-throughput drop before the check fails.
REGRESSION_TOLERANCE = 0.30

#: Pending-timer populations exercised (the 10⁵ point is the
#: 1000-node / 10⁵-terminal machine's idle-arrival population).
POPULATIONS = (1_000, 10_000, 100_000)

#: Total dispatched events per measurement, roughly constant across
#: populations so each point costs comparable wall time.
_TARGET_EVENTS = 400_000

_SPIN_ITERATIONS = 2_000_000


def spin_rate(iterations: int = _SPIN_ITERATIONS) -> float:
    """Pure-Python iterations/second on this interpreter (best of 3)."""
    best = float("inf")
    for _ in range(3):
        counter = 0
        started = time.perf_counter()
        for value in range(iterations):
            counter += value
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return iterations / best


def run_population(
    scheduler: str, population: int, repeats: int = 3
) -> dict:
    """Dispatch rate with ``population`` pending self-firing timers.

    Each timer reschedules itself with a pseudo-random delay until its
    round budget is spent, so the pending population stays ~constant
    for the whole run.  Delays come from a fixed-seed ``Random`` —
    both schedulers replay the identical event sequence.
    """
    rounds = max(3, _TARGET_EVENTS // population)
    best_wall = float("inf")
    dispatched = 0
    for _ in range(max(1, repeats)):
        env = Environment(fast_lane=True, scheduler=scheduler)
        rng = random.Random(0xC0FFEE).random
        schedule = env.schedule

        def tick(left):
            if left:
                schedule(0.01 + rng(), tick, left - 1)

        for _ in range(population):
            schedule(0.01 + rng(), tick, rounds)
        started = time.perf_counter()
        env.run()
        wall = time.perf_counter() - started
        if wall < best_wall:
            best_wall = wall
        dispatched = env.dispatch_count
    return {
        "scheduler": scheduler,
        "population": population,
        "rounds": rounds,
        "events_dispatched": dispatched,
        "best_wall_seconds": round(best_wall, 4),
        "events_per_sec": round(
            dispatched / best_wall if best_wall > 0 else 0.0, 1
        ),
    }


def run_benchmark(repeats: int = 3) -> dict:
    """Both schedulers across all populations, spin-normalized."""
    rate = spin_rate()
    results = []
    for population in POPULATIONS:
        for scheduler in ("heap", "calendar"):
            entry = run_population(
                scheduler, population, repeats=repeats
            )
            entry["events_per_spin"] = round(
                entry["events_per_sec"] / rate, 6
            )
            results.append(entry)
    speedups = {}
    for population in POPULATIONS:
        by_sched = {
            entry["scheduler"]: entry["events_per_sec"]
            for entry in results
            if entry["population"] == population
        }
        if by_sched.get("heap"):
            speedups[str(population)] = round(
                by_sched["calendar"] / by_sched["heap"], 3
            )
    return {
        "benchmark": "kernel_sched",
        "spin_rate": round(rate, 1),
        "results": results,
        "calendar_speedup_over_heap": speedups,
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%S%z", time.localtime()
        ),
    }


def load_baselines() -> dict:
    """Committed normalized calendar rates, keyed by population."""
    try:
        data = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    return data if isinstance(data, dict) else {}


def check_regression(record: dict) -> tuple[bool, str]:
    """Compare calendar events_per_spin per population vs baseline."""
    baselines = load_baselines()
    if not baselines:
        return True, "no committed baseline; recorded only"
    failures = []
    checked = []
    for entry in record["results"]:
        if entry["scheduler"] != "calendar":
            continue
        baseline = baselines.get(str(entry["population"]))
        if not isinstance(baseline, (int, float)):
            continue
        floor = baseline * (1.0 - REGRESSION_TOLERANCE)
        measured = entry["events_per_spin"]
        checked.append(
            f"pop={entry['population']}: {measured:.6f} vs "
            f"baseline {baseline:.6f} (floor {floor:.6f})"
        )
        if measured < floor:
            failures.append(checked[-1])
    message = "; ".join(checked) or "no matching baseline entries"
    return not failures, message


def _out_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUT")
    return Path(override) if override else DEFAULT_OUT


def append_record(record: dict, path: Path) -> None:
    """Append to the JSON trajectory (a list of records)."""
    records = []
    if path.is_file():
        try:
            records = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(records, list):
                records = [records]
        except (OSError, ValueError):
            records = []
    records.append(record)
    path.write_text(
        json.dumps(records, indent=2) + "\n", encoding="utf-8"
    )


def test_kernel_sched_events_per_sec():
    """Record heap-vs-calendar rates; enforce the baseline when asked."""
    record = run_benchmark()
    ok, message = check_regression(record)
    record["baseline_check"] = message
    append_record(record, _out_path())
    print(json.dumps(record, indent=2))
    if os.environ.get("REPRO_BENCH_ENFORCE"):
        assert ok, f"calendar dispatch rate regressed: {message}"


if __name__ == "__main__":  # pragma: no cover
    test_kernel_sched_events_per_sec()
