"""Router headline benchmark: the mixed blend at zero think time.

Runs the ``router`` experiment's contended operating point — the
mixed blend of :mod:`repro.experiments.router` at think time 0 —
once per algorithm (the five fixed CC algorithms plus the router) and
records throughput, abort ratio and the router's per-class routing
table.  This is the headline point of the extension: with every
terminal saturated, no fixed algorithm handles all three classes well
at once, so the router's per-class dispatch must put its throughput
strictly above each of them at the same seed.

Two gates ride on the record:

* always — the MVCC read-path invariant: routed read-only classes
  report **zero** lock waits and **zero** aborts;
* with ``REPRO_BENCH_ENFORCE=1`` (the CI ``router-smoke`` job) — the
  strict win: router throughput > every fixed algorithm's at the
  headline point.  The gate lives at think 0 deliberately; at
  think-limited light load all algorithms commit the same
  terminal-bounded count and strict dominance is unmeasurable.

Records are appended to ``BENCH_router.json`` at the repo root
(override with ``$REPRO_BENCH_OUT``).

Run standalone for the committed-quality reading::

    REPRO_FIDELITY=bench python benchmarks/bench_router.py

or through pytest (same JSON record)::

    pytest benchmarks/bench_router.py -q
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

# Standalone-script convenience: make src/ importable without
# PYTHONPATH (pytest runs get it from the usual test environment).
try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(
        0, str(Path(__file__).resolve().parents[1] / "src")
    )

from repro.experiments.fidelity import Fidelity
from repro.experiments.router import (
    ROUTER_ALGORITHMS,
    mixed_config,
)
from repro.experiments.runner import run_many

DEFAULT_OUT = Path(__file__).resolve().parents[1] / (
    "BENCH_router.json"
)

#: The headline operating point: every terminal saturated.
HEADLINE_THINK = 0.0


def _read_only_keys(result):
    return [
        key
        for key in result.router_class_commits
        if key.startswith("ro-")
    ]


def run_benchmark(fidelity: Fidelity) -> dict:
    """Run the headline point per algorithm; return the JSON record."""
    configs = [
        mixed_config(fidelity, algorithm, HEADLINE_THINK)
        for algorithm in ROUTER_ALGORITHMS
    ]
    started = time.perf_counter()
    results = dict(zip(ROUTER_ALGORITHMS, run_many(configs)))
    elapsed = time.perf_counter() - started
    router = results["router"]
    ro_keys = _read_only_keys(router)
    record = {
        "benchmark": "router",
        "fidelity": fidelity.name,
        "think_time": HEADLINE_THINK,
        "seed": fidelity.seed,
        "throughput": {
            name: round(result.throughput, 3)
            for name, result in results.items()
        },
        "abort_ratio": {
            name: round(result.abort_ratio, 4)
            for name, result in results.items()
        },
        "router_class_commits": dict(router.router_class_commits),
        "router_class_algorithms": {
            key: dict(arms)
            for key, arms in router.router_class_algorithms.items()
        },
        "read_only_lock_waits": sum(
            router.router_class_lock_waits.get(key, 0)
            for key in ro_keys
        ),
        "read_only_aborts": sum(
            router.router_class_aborts.get(key, 0)
            for key in ro_keys
        ),
        "wall_seconds": round(elapsed, 3),
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%S%z", time.localtime()
        ),
    }
    best_fixed = max(
        (
            (name, result.throughput)
            for name, result in results.items()
            if name != "router"
        ),
        key=lambda pair: pair[1],
    )
    record["best_fixed"] = best_fixed[0]
    record["win_over_best_fixed"] = (
        round(router.throughput / best_fixed[1], 3)
        if best_fixed[1] > 0
        else None
    )
    return record


def _out_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUT")
    return Path(override) if override else DEFAULT_OUT


def append_record(record: dict, path: Path) -> None:
    """Append to the JSON trajectory (a list of records)."""
    records = []
    if path.is_file():
        try:
            records = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(records, list):
                records = [records]
        except (OSError, ValueError):
            records = []
    records.append(record)
    path.write_text(
        json.dumps(records, indent=2) + "\n", encoding="utf-8"
    )


def test_router_headline():
    """Record the headline point; gate the strict win under CI.

    The read-only invariant (zero lock waits, zero aborts) is always
    asserted — it is a correctness property of the MVCC read path,
    not a performance number.  The strict-win gate applies with
    ``REPRO_BENCH_ENFORCE=1``.
    """
    fidelity = Fidelity.from_env(default="bench")
    record = run_benchmark(fidelity)
    append_record(record, _out_path())
    print(json.dumps(record, indent=2))
    assert record["read_only_lock_waits"] == 0, record
    assert record["read_only_aborts"] == 0, record
    if os.environ.get("REPRO_BENCH_ENFORCE", "") == "1":
        router_tput = record["throughput"]["router"]
        for name, tput in record["throughput"].items():
            if name == "router":
                continue
            assert router_tput > tput, (
                "router must strictly beat every fixed algorithm "
                "at the headline point",
                name,
                record["throughput"],
            )


if __name__ == "__main__":  # pragma: no cover
    test_router_headline()
