"""Full-tree lint timing benchmark (cold and warm cache).

simlint gates CI, so its own runtime is part of the perf trajectory:
every new rule — and especially the whole-program pass, which cannot
be cached per file — adds latency to every push.  This benchmark runs
the linter over ``src``, ``benchmarks``, and ``tests`` three ways and
appends the timings to ``BENCH_lint.json`` at the repo root (override
with ``$REPRO_BENCH_OUT``):

* **cold** — empty cache, file rules + project rules (what a fresh CI
  container pays);
* **warm** — second run against the populated cache (what an
  incremental run pays: cache hits plus the uncacheable project pass);
* **project-only** — the whole-program pass alone (model build + all
  project rules);
* **flow-only** — the flow-sensitive layer alone: the CFG/dataflow
  file rules cold over every file, and the taint-based project rules
  over a prebuilt model, so regressions in the engine show up
  separately from the rest of the linter.

With ``$REPRO_BENCH_ENFORCE`` set (the CI lint job), the warm-cache
contract is gated: the warm run must hit the cache for every file and
stay at least :data:`WARM_SPEEDUP_FLOOR` times faster than cold — if
a rule's cache signature starts churning per run (the flow rules'
composite engine hashes are the new way to get that wrong), warm
degenerates to cold and this trips.

Run standalone for a quick reading::

    python benchmarks/bench_lint.py

or through pytest (same JSON record)::

    pytest benchmarks/bench_lint.py -q
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

# Standalone-script convenience: make src/ importable without
# PYTHONPATH (pytest runs get it from the usual test environment).
try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(
        0, str(Path(__file__).resolve().parents[1] / "src")
    )

from repro.lint.cache import LintCache
from repro.lint.engine import discover_files, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "BENCH_lint.json"
LINTED_TREES = ("src", "benchmarks", "tests")

#: Warm runs must be at least this much faster than cold runs when
#: ``$REPRO_BENCH_ENFORCE`` is set.
WARM_SPEEDUP_FLOOR = 1.2

#: The flow-sensitive rules, timed separately.
FLOW_FILE_RULES = (
    "float-time-equality",
    "lock-path-discipline",
    "waitable-escape",
)
FLOW_PROJECT_RULES = ("draw-escape", "race-reconciliation", "time-taint")


def _roots() -> list[Path]:
    return [REPO_ROOT / tree for tree in LINTED_TREES]


def _time_lint(cache: LintCache | None, **kwargs) -> tuple[float, object]:
    started = time.perf_counter()
    report = lint_paths(_roots(), cache=cache, **kwargs)
    return time.perf_counter() - started, report


def run_benchmark(tmp_cache: Path) -> dict:
    """Cold, warm, and project-only timings over the real tree."""
    cold_seconds, cold = _time_lint(LintCache(tmp_cache))
    warm_seconds, warm = _time_lint(LintCache(tmp_cache))

    started = time.perf_counter()
    from repro.lint.project import ProjectModel
    from repro.lint.registry import all_project_rules, get_rule

    model = ProjectModel.build(discover_files(_roots()))
    project_findings = sum(
        len(rule.check_project(model))
        for rule in all_project_rules()
    )
    project_seconds = time.perf_counter() - started

    # Flow layer in isolation: CFG/dataflow file rules cold over every
    # file, then the taint project rules over the already-built model.
    started = time.perf_counter()
    flow_file = lint_paths(
        _roots(),
        rules=[get_rule(rid) for rid in FLOW_FILE_RULES],
        cache=None,
        project_rules=[],
    )
    flow_file_seconds = time.perf_counter() - started
    started = time.perf_counter()
    for rid in FLOW_PROJECT_RULES:
        get_rule(rid).check_project(model)
    flow_project_seconds = time.perf_counter() - started
    assert flow_file.files == cold.files

    return {
        "benchmark": "lint_full_tree",
        "trees": list(LINTED_TREES),
        "files": cold.files,
        "violations_total": len(cold.violations),
        "project_findings": project_findings,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_cache_hits": warm.cache_hits,
        "project_pass_seconds": round(project_seconds, 4),
        "flow_file_pass_seconds": round(flow_file_seconds, 4),
        "flow_project_pass_seconds": round(flow_project_seconds, 4),
        "warm_speedup": round(
            cold_seconds / warm_seconds if warm_seconds > 0 else 0.0,
            2,
        ),
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%S%z", time.localtime()
        ),
    }


def _out_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUT")
    return Path(override) if override else DEFAULT_OUT


def append_record(record: dict, path: Path) -> None:
    """Append to the JSON trajectory (a list of records)."""
    records = []
    if path.is_file():
        try:
            records = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(records, list):
                records = [records]
        except (OSError, ValueError):
            records = []
    records.append(record)
    path.write_text(
        json.dumps(records, indent=2) + "\n", encoding="utf-8"
    )


def test_lint_full_tree_timing(tmp_path=None):
    """Record cold/warm lint timings; sanity-check cache behaviour."""
    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        cache_file = Path(scratch) / "simlint-bench-cache.json"
        record = run_benchmark(cache_file)
    append_record(record, _out_path())
    print(json.dumps(record, indent=2))
    # The warm run must actually hit the cache for every file.
    assert record["warm_cache_hits"] == record["files"]
    if os.environ.get("REPRO_BENCH_ENFORCE"):
        assert record["warm_speedup"] >= WARM_SPEEDUP_FLOOR, (
            f"warm lint run only {record['warm_speedup']}x faster "
            f"than cold (floor {WARM_SPEEDUP_FLOOR}x): the per-file "
            f"cache is not paying for itself — check the rule-set "
            f"signature for per-run churn"
        )


if __name__ == "__main__":  # pragma: no cover
    test_lint_full_tree_timing()
