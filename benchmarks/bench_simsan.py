"""Sanitizer overhead benchmark on the fig. 2 saturation point.

simsan is opt-in, but its cost decides whether the sanitize-smoke CI
job and routine ``--sanitize`` sweeps stay usable, so the slowdown is
part of the perf trajectory.  This benchmark runs the saturated fig. 2
point (2PL, think=0, 8 nodes — the densest same-timestamp activity in
the paper grid) three ways:

* **clean** — the production path (hooks compiled to no-ops);
* **sanitized** — full instrumentation, confirmer off (pure hook +
  bookkeeping overhead);
* **sanitized+confirm** — the default ``--sanitize`` mode, which adds
  one perturbed clean-speed re-run for race classification.

Appends to ``BENCH_simsan.json`` at the repo root (override with
``$REPRO_BENCH_OUT``).  With ``$REPRO_BENCH_ENFORCE`` set (the CI
sanitize-smoke job), the default-mode slowdown must stay under
``MAX_SLOWDOWN``.

Run standalone or through pytest::

    python benchmarks/bench_simsan.py
    pytest benchmarks/bench_simsan.py -q
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

# Standalone-script convenience: make src/ importable without
# PYTHONPATH (pytest runs get it from the usual test environment).
try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(
        0, str(Path(__file__).resolve().parents[1] / "src")
    )

from repro.core.simulation import Simulation
from repro.experiments.fidelity import Fidelity
from repro.experiments.scaling import scaling_config
from repro.sanitizer.core import Sanitizer, diff_results

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "BENCH_simsan.json"

#: CI gate: the default --sanitize mode (hooks + confirmer) may cost
#: at most this many clean-run equivalents on the saturated point.
MAX_SLOWDOWN = 5.0


def _bench_config(fidelity: Fidelity):
    """Fig. 2, 2PL, think=0, 8 nodes — the hot-path benchmark point.

    ``target_commits`` is zeroed so the horizon (and the event count)
    is fixed by the fidelity alone: every mode simulates exactly the
    same events and the wall-clock ratio is a pure overhead figure.
    """
    config = scaling_config(
        fidelity, algorithm="2pl", think_time=0.0, num_nodes=8
    )
    return config.with_(
        target_commits=0, max_duration=config.duration
    )


def _best_wall(fidelity: Fidelity, repeats: int, **sim_kwargs):
    best = float("inf")
    result = None
    findings = 0
    for _ in range(max(1, repeats)):
        kwargs = dict(sim_kwargs)
        if "sanitize" in kwargs:
            confirm = kwargs.pop("sanitize")
            kwargs["sanitizer"] = Sanitizer(confirm=confirm)
        simulation = Simulation(_bench_config(fidelity), **kwargs)
        started = time.perf_counter()
        result = simulation.run()
        wall = time.perf_counter() - started
        if wall < best:
            best = wall
        if simulation.sanitizer is not None:
            findings = len(simulation.sanitizer.finalize())
    return best, result, findings


def run_benchmark(fidelity: Fidelity, repeats: int = 3) -> dict:
    clean_wall, clean_result, _ = _best_wall(fidelity, repeats)
    hooks_wall, hooks_result, hook_findings = _best_wall(
        fidelity, repeats, sanitize=False
    )
    confirm_wall, _, confirm_findings = _best_wall(
        fidelity, 1, sanitize=True
    )
    return {
        "benchmark": "simsan_overhead",
        "fidelity": fidelity.name,
        "workload": "fig02 2pl think=0 nodes=8",
        "repeats": max(1, repeats),
        "clean_seconds": round(clean_wall, 4),
        "sanitized_seconds": round(hooks_wall, 4),
        "sanitized_confirm_seconds": round(confirm_wall, 4),
        "hook_slowdown": round(
            hooks_wall / clean_wall if clean_wall > 0 else 0.0, 3
        ),
        "confirm_slowdown": round(
            confirm_wall / clean_wall if clean_wall > 0 else 0.0, 3
        ),
        "findings": confirm_findings or hook_findings,
        "results_bit_identical": diff_results(
            clean_result, hooks_result
        )
        == "",
        "max_slowdown_gate": MAX_SLOWDOWN,
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%S%z", time.localtime()
        ),
    }


def _out_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUT")
    return Path(override) if override else DEFAULT_OUT


def append_record(record: dict, path: Path) -> None:
    """Append to the JSON trajectory (a list of records)."""
    records = []
    if path.is_file():
        try:
            records = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(records, list):
                records = [records]
        except (OSError, ValueError):
            records = []
    records.append(record)
    path.write_text(
        json.dumps(records, indent=2) + "\n", encoding="utf-8"
    )


def test_simsan_overhead():
    """Record sanitizer overhead; gate it under REPRO_BENCH_ENFORCE."""
    record = run_benchmark(Fidelity.smoke())
    append_record(record, _out_path())
    print(json.dumps(record, indent=2))
    # Instrumented execution must observe, never perturb.
    assert record["results_bit_identical"]
    if os.environ.get("REPRO_BENCH_ENFORCE"):
        assert record["confirm_slowdown"] <= MAX_SLOWDOWN, (
            f"sanitized run is {record['confirm_slowdown']}x clean "
            f"(gate: {MAX_SLOWDOWN}x) — the sanitize-smoke job and "
            "--sanitize sweeps are becoming unusable"
        )


if __name__ == "__main__":  # pragma: no cover
    test_simsan_overhead()
