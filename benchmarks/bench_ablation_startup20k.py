"""Text ablation: InstPerStartup=20K, message cost zero (close to Figs 16-17).

Regenerates the figure via the experiment registry ("startup20k") and
prints the table; the benchmark time is the wall-clock cost of the
underlying simulation sweep (shared sweeps are memoized, so the first
figure of a group carries the cost).  Set REPRO_FIDELITY=full for the
EXPERIMENTS.md-quality run.
"""


def test_ablation_startup20k(run_experiment):
    figures = run_experiment("startup20k")
    assert len(figures) == 2
