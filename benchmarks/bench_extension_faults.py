"""Extension: availability under injected failures — node crashes
(MTBF/MTTR sweep at 2-way declustering) and message loss (0-5% at
8-way) across the four distributed CC algorithms.

Regenerated via the experiment registry ("faults"); set
REPRO_FIDELITY=full for the EXPERIMENTS.md-quality run.
"""


def test_extension_faults(run_experiment, fidelity):
    figures = run_experiment("faults")
    (
        crash_tput, availability, crash_abort, crash_blocked,
        loss_tput, loss_abort, loss_blocked,
    ) = figures
    if fidelity.name == "smoke":
        return
    for name, curve in crash_tput.curves.items():
        # Rarer crashes can only help: the MTBF sweep is ordered
        # harshest-first, so throughput must improve end to end.
        assert curve[-1] > curve[0], (name, curve)
    for name, curve in loss_tput.curves.items():
        # Message loss is never free at the 5% corner.
        assert curve[-1] < curve[0], (name, curve)
    for name, curve in loss_abort.curves.items():
        # The loss sweep starts at probability 0: no failure-induced
        # aborts at the armed-but-idle baseline.
        assert curve[0] == 0.0, (name, curve)
