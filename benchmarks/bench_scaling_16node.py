"""Footnote 7: the 16-node machine with 128-read transactions — the
paper says only that "the trends were similar" to the 8-node results.

Regenerated via the experiment registry ("scaling16"); set
REPRO_FIDELITY=full for the EXPERIMENTS.md-quality run.
"""


def test_scaling_16node(run_experiment, fidelity):
    throughput, response = run_experiment("scaling16")
    if fidelity.name == "smoke":
        return
    # Near-linear throughput speedup at heavy load, like the 8-node
    # trend, but against the 16x larger machine.
    assert throughput.curve("no_dc")[0] > 8.0
    # Response-time speedup exceeds the parallelism-only limit at
    # moderate loads (the same hump as Figure 5).
    best = max(
        v for v in response.curve("no_dc") if v is not None
    )
    assert best > 10.0
