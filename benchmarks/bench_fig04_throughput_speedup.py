"""Figure 4: 8-node/1-node throughput speedup vs think time.

Regenerates the figure via the experiment registry ("fig4") and
prints the table; the benchmark time is the wall-clock cost of the
underlying simulation sweep (shared sweeps are memoized, so the first
figure of a group carries the cost).  Set REPRO_FIDELITY=full for the
EXPERIMENTS.md-quality run.
"""


def test_fig04_throughput_speedup(run_experiment):
    figures = run_experiment("fig4")
    (figure,) = figures
    # Near-linear speedup under heavy load, approaching 1 when idle.
    assert figure.curve("no_dc")[0] > 5.0
    assert figure.curve("no_dc")[-1] < 2.0
