"""Figure 7: CPU utilizations underlying the scaling speedups.

Regenerates the figure via the experiment registry ("fig7") and
prints the table; the benchmark time is the wall-clock cost of the
underlying simulation sweep (shared sweeps are memoized, so the first
figure of a group carries the cost).  Set REPRO_FIDELITY=full for the
EXPERIMENTS.md-quality run.
"""


def test_fig07_cpu_utilization(run_experiment):
    figures = run_experiment("fig7")
    for figure in figures:
        for curve in figure.curves.values():
            assert all(0.0 <= v <= 1.0 for v in curve)
    # Slightly I/O bound: CPUs run hot but below saturation at think 0.
    assert 0.5 < figures[1].curve("no_dc")[0] <= 1.0
