"""Figure 13: abort ratios, 1-way placement, smaller database.

Regenerates the figure via the experiment registry ("fig13") and
prints the table; the benchmark time is the wall-clock cost of the
underlying simulation sweep (shared sweeps are memoized, so the first
figure of a group carries the cost).  Set REPRO_FIDELITY=full for the
EXPERIMENTS.md-quality run.
"""


def test_fig13_abort_ratio_1way(run_experiment):
    figures = run_experiment("fig13")
    (figure,) = figures
    heavy = {n: c[0] for n, c in figure.curves.items()}
    assert heavy["opt"] > heavy["2pl"]
