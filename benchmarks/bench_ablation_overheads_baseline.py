"""Text ablation: the standard 2K/1K overheads (close to Figs 14-15).

Regenerates the figure via the experiment registry ("overheads-baseline") and
prints the table; the benchmark time is the wall-clock cost of the
underlying simulation sweep (shared sweeps are memoized, so the first
figure of a group carries the cost).  Set REPRO_FIDELITY=full for the
EXPERIMENTS.md-quality run.
"""


def test_ablation_overheads_baseline(run_experiment):
    figures = run_experiment("overheads-baseline")
    assert len(figures) == 2
