"""Sensitivity: the Snoop's DetectionInterval for 2PL (footnote 2 notes
the analogous knob was "critical and sensitive" in [Jenq89]).

Regenerated via the experiment registry ("detection-interval"); set
REPRO_FIDELITY=full for the EXPERIMENTS.md-quality run.
"""


def test_sensitivity_detection_interval(run_experiment):
    response, aborts = run_experiment("detection-interval")
    curve = response.curve("2pl")
    # Slower detection leaves global deadlocks blocking longer: the
    # 10 s point must not beat the 0.1 s point.
    assert curve[-1] >= curve[0] * 0.9
