"""The 4-node scaling variant discussed in the text of paper section 4.2.

Regenerates the figure via the experiment registry ("scaling4") and
prints the table; the benchmark time is the wall-clock cost of the
underlying simulation sweep (shared sweeps are memoized, so the first
figure of a group carries the cost).  Set REPRO_FIDELITY=full for the
EXPERIMENTS.md-quality run.
"""


def test_scaling_4node(run_experiment):
    figures = run_experiment("scaling4")
    throughput_figure, response_figure = figures
    # Throughput speedup approaches 4 under heavy load.
    assert throughput_figure.curve("no_dc")[0] > 2.5
