"""Figure 3: response time vs think time, 1-node and 8-node systems.

Regenerates the figure via the experiment registry ("fig3") and
prints the table; the benchmark time is the wall-clock cost of the
underlying simulation sweep (shared sweeps are memoized, so the first
figure of a group carries the cost).  Set REPRO_FIDELITY=full for the
EXPERIMENTS.md-quality run.
"""


def test_fig03_response_time(run_experiment):
    figures = run_experiment("fig3")
    (figure_1node, figure_8node) = figures
    # Response times fall as load lightens, for every algorithm.
    for figure in figures:
        for name, curve in figure.curves.items():
            assert curve[0] > curve[-1], name
