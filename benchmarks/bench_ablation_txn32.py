"""Footnote-9 ablation: 32-read transactions, same partitioning trends.

Regenerates the figure via the experiment registry ("txn32") and
prints the table; the benchmark time is the wall-clock cost of the
underlying simulation sweep (shared sweeps are memoized, so the first
figure of a group carries the cost).  Set REPRO_FIDELITY=full for the
EXPERIMENTS.md-quality run.
"""


def test_ablation_txn32(run_experiment):
    figures = run_experiment("txn32")
    (figure,) = figures
    assert figure.curve("no_dc")[-1] > 2.0
