"""Figure 2: throughput vs think time, 1-node and 8-node systems.

Regenerates the figure via the experiment registry ("fig2") and
prints the table; the benchmark time is the wall-clock cost of the
underlying simulation sweep (shared sweeps are memoized, so the first
figure of a group carries the cost).  Set REPRO_FIDELITY=full for the
EXPERIMENTS.md-quality run.
"""


def test_fig02_throughput(run_experiment):
    figures = run_experiment("fig2")
    (figure_1node, figure_8node) = figures
    # Sanity of shape: every algorithm produces positive throughput at
    # the heaviest load, and the 8-node machine out-produces the
    # 1-node machine there.
    for figure in figures:
        for name, curve in figure.curves.items():
            assert curve[0] is not None and curve[0] > 0, name
    assert (
        figure_8node.value_at("no_dc", 0.0)
        > figure_1node.value_at("no_dc", 0.0)
    )
