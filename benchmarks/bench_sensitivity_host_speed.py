"""Sensitivity: host CPU speed — checking the paper's §4.1 claim that a
10 MIPS host "won't limit system performance".

Regenerated via the experiment registry ("host-speed"); set
REPRO_FIDELITY=full for the EXPERIMENTS.md-quality run.
"""


def test_sensitivity_host_speed(run_experiment):
    throughput, host_util = run_experiment("host-speed")
    no_dc = throughput.curve("no_dc")
    # At 10 MIPS the host must not be the bottleneck: throughput within
    # a whisker of the 20 MIPS point, and host utilization comfortably
    # below saturation.
    assert no_dc[-2] > 0.9 * no_dc[-1]
    ten_mips_util = host_util.value_at("no_dc", 10.0)
    assert ten_mips_util < 0.5
