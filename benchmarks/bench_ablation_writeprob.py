"""WriteProb ablation: the 1/8 (text) vs 1/4 (Table 4) contradiction.

Regenerates the figure via the experiment registry ("writeprob") and
prints the table; the benchmark time is the wall-clock cost of the
underlying simulation sweep (shared sweeps are memoized, so the first
figure of a group carries the cost).  Set REPRO_FIDELITY=full for the
EXPERIMENTS.md-quality run.
"""


def test_ablation_writeprob(run_experiment):
    figures = run_experiment("writeprob")
    eighth, quarter = figures
    # More writes, more aborts: the 1/4 setting aborts more for every
    # algorithm at the heaviest load.
    assert quarter.curve("opt")[0] > eighth.curve("opt")[0]
