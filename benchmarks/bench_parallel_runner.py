"""Wall-clock benchmark of the parallel sweep executor.

Times one machine-size figure sweep (the Figure 4 grid: five
algorithms x the fidelity's think-time grid at 1 and 8 nodes) twice —
serial (``jobs=1``) and parallel (``jobs=N``, default all cores) —
with cold memos, a cold worker pool, and no disk cache, asserts the
results are bit-identical, and appends a JSON record to
``BENCH_parallel_runner.json`` at the repo root (override the path
with ``$REPRO_BENCH_OUT``) so the speedup is tracked over time.

Per-record instrumentation beyond the speedup:

* ``dispatch_overhead_seconds`` — parallel minus serial wall time,
  floored at zero: on a single-CPU host this is exactly the
  coordination cost (spawn + chunk dispatch + result transport) the
  executor adds on top of pure simulation.
* ``ipc_bytes`` — result bytes actually shipped worker-to-parent
  (cache-codec strings), next to ``ipc_bytes_pickle``, what the old
  pickled-``SimulationResult`` transport would have sent.

With ``REPRO_BENCH_ENFORCE=1`` (the CI parallel-smoke job) the run
fails if the jobs=2 speedup drops below 0.95x — the persistent-pool
floor even on a single-core runner; multi-core machines additionally
enforce >= 2x.

Run standalone for a quick reading::

    REPRO_FIDELITY=smoke python benchmarks/bench_parallel_runner.py

or through pytest with the rest of the suite (same JSON record)::

    pytest benchmarks/bench_parallel_runner.py -q
"""

from __future__ import annotations

import json
import os
import pickle
import sys
import time
from pathlib import Path

# Standalone-script convenience: make src/ importable without
# PYTHONPATH (pytest runs get it from the usual test environment).
try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(
        0, str(Path(__file__).resolve().parents[1] / "src")
    )

import repro.experiments.worker_pool as worker_pool
from repro.experiments.executor import SweepExecutor, resolve_jobs
from repro.experiments.fidelity import Fidelity
from repro.experiments.scaling import ALGORITHMS, scaling_config

DEFAULT_OUT = Path(__file__).resolve().parents[1] / (
    "BENCH_parallel_runner.json"
)

#: The jobs=2 speedup floor enforced under REPRO_BENCH_ENFORCE=1.
#: A persistent pool with chunked dispatch and codec transport should
#: cost (nearly) nothing even on one CPU; below this the dispatch tax
#: has crept back.
MIN_SPEEDUP_JOBS2 = 0.95


def _sweep_configs(fidelity: Fidelity):
    return [
        scaling_config(fidelity, algorithm, think_time, num_nodes)
        for num_nodes in (1, 8)
        for algorithm in ALGORITHMS
        for think_time in fidelity.think_times
    ]


def _timed_run(configs, jobs: int):
    executor = SweepExecutor(jobs=jobs)
    started = time.perf_counter()
    results = executor.run_many(configs)
    elapsed = time.perf_counter() - started
    assert executor.stats.simulated == len(configs)
    return results, elapsed, executor.stats


def run_benchmark(fidelity: Fidelity, jobs: int) -> dict:
    """Time the sweep serial vs parallel; return the JSON record."""
    configs = _sweep_configs(fidelity)
    serial_results, serial_seconds, _ = _timed_run(configs, jobs=1)
    # Charge the parallel run for pool spawn too: the pool is
    # per-session, and this timed batch is the session's first.
    worker_pool.shutdown_pool()
    parallel_results, parallel_seconds, stats = _timed_run(
        configs, jobs=jobs
    )
    assert [r.as_dict() for r in parallel_results] == [
        r.as_dict() for r in serial_results
    ], "parallel sweep diverged from serial sweep"
    return {
        "benchmark": "parallel_runner",
        "fidelity": fidelity.name,
        "grid_points": len(configs),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(
            serial_seconds / parallel_seconds, 3
        ) if parallel_seconds > 0 else None,
        "dispatch_overhead_seconds": round(
            max(parallel_seconds - serial_seconds, 0.0), 3
        ),
        "chunks": stats.chunks_dispatched,
        "ipc_bytes": stats.ipc_bytes,
        "ipc_bytes_pickle": len(
            pickle.dumps(serial_results, pickle.HIGHEST_PROTOCOL)
        ),
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%S%z", time.localtime()
        ),
    }


def _out_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUT")
    return Path(override) if override else DEFAULT_OUT


def append_record(record: dict, path: Path) -> None:
    """Append to the JSON trajectory (a list of records)."""
    records = []
    if path.is_file():
        try:
            records = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(records, list):
                records = [records]
        except (OSError, ValueError):
            records = []
    records.append(record)
    path.write_text(
        json.dumps(records, indent=2) + "\n", encoding="utf-8"
    )


def test_parallel_runner_speedup():
    """Parallel sweep matches serial bit-for-bit; record the timing.

    Equality is always enforced.  The speedup gates apply when
    ``REPRO_BENCH_ENFORCE=1`` (CI) or on clearly multi-core hosts:
    >= 0.95x at jobs=2 everywhere (persistent-pool floor), >= 2x on
    machines with at least 4 cores.
    """
    fidelity = Fidelity.from_env(default="smoke")
    jobs = resolve_jobs()
    record = run_benchmark(fidelity, jobs=max(jobs, 2))
    append_record(record, _out_path())
    print(json.dumps(record, indent=2))
    enforce = os.environ.get("REPRO_BENCH_ENFORCE", "") == "1"
    if enforce and record["jobs"] == 2:
        assert record["speedup"] >= MIN_SPEEDUP_JOBS2, record
    if (os.cpu_count() or 1) >= 4:
        assert record["speedup"] >= 2.0, record


if __name__ == "__main__":  # pragma: no cover
    test_parallel_runner_speedup()
