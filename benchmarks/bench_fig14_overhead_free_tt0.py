"""Figure 14: speedup vs degree of partitioning, no overheads, think 0.

Regenerates the figure via the experiment registry ("fig14") and
prints the table; the benchmark time is the wall-clock cost of the
underlying simulation sweep (shared sweeps are memoized, so the first
figure of a group carries the cost).  Set REPRO_FIDELITY=full for the
EXPERIMENTS.md-quality run.
"""


def test_fig14_overhead_free_tt0(run_experiment):
    figures = run_experiment("fig14")
    (figure,) = figures
    # NO_DC gains almost nothing from partitioning at think 0.
    no_dc = [v for v in figure.curve("no_dc") if v is not None]
    assert max(no_dc) < 1.5
