"""Extension: the full blocking/restart spectrum (7 algorithms).

Beyond the paper: adds wait-die and immediate-restart to the paper's
five, sweeping them together on the standard 8-node 8-way machine.
Regenerated via the experiment registry ("spectrum"); set
REPRO_FIDELITY=full for the EXPERIMENTS.md-quality run.
"""


def test_extension_spectrum(run_experiment):
    throughput, abort_ratio = run_experiment("spectrum")
    heavy_tput = {
        name: curve[0] for name, curve in throughput.curves.items()
    }
    # The pure-abort extreme pays the highest abort bill under load.
    heavy_aborts = {
        name: curve[0] for name, curve in abort_ratio.curves.items()
    }
    assert heavy_aborts["ir"] >= heavy_aborts["2pl"]
    assert heavy_tput["no_dc"] >= heavy_tput["ir"]
