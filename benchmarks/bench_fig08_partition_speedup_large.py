"""Figure 8: 8-way/1-way response-time speedup, larger database.

Regenerates the figure via the experiment registry ("fig8") and
prints the table; the benchmark time is the wall-clock cost of the
underlying simulation sweep (shared sweeps are memoized, so the first
figure of a group carries the cost).  Set REPRO_FIDELITY=full for the
EXPERIMENTS.md-quality run.
"""


def test_fig08_partition_speedup_large(run_experiment):
    figures = run_experiment("fig8")
    (figure,) = figures
    # Roughly fivefold parallelism gain at the lightest loads.
    assert figure.curve("no_dc")[-1] > 3.0
