"""Kernel hot-path throughput benchmark (events dispatched per second).

Runs the canonical Figure 2 closed-system workload — 2PL at
think time 0 on the 8-node declustered machine, the saturated point
where the event loop dominates wall time — and reports the kernel's
dispatch rate from :attr:`Environment.dispatch_count`.  The record is
appended to ``BENCH_kernel_events.json`` at the repo root (override
with ``$REPRO_BENCH_OUT``) so the events/sec trajectory is tracked
over time.

Because events/sec is machine-dependent, the record also includes a
*spin rate* — the speed of a trivial pure-Python loop on the same
interpreter — and the dimensionless ratio ``events_per_spin =
events_per_sec / spin_rate``.  The committed baseline
(``benchmarks/baselines/kernel_events.json``) stores that normalized
ratio; the regression check compares against it with a 30% tolerance,
so a slower CI runner does not trip it but a kernel regression does.
The check is enforced when ``$REPRO_BENCH_ENFORCE`` is set (the CI
perf-smoke job sets it); local runs just record.

Run standalone for a quick reading::

    REPRO_FIDELITY=smoke python benchmarks/bench_kernel_hotpath.py

or through pytest (same JSON record)::

    pytest benchmarks/bench_kernel_hotpath.py -q
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

# Standalone-script convenience: make src/ importable without
# PYTHONPATH (pytest runs get it from the usual test environment).
try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(
        0, str(Path(__file__).resolve().parents[1] / "src")
    )

from repro.core.simulation import Simulation
from repro.experiments.fidelity import Fidelity
from repro.experiments.scaling import scaling_config

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "BENCH_kernel_events.json"
BASELINE_PATH = (
    Path(__file__).resolve().parent / "baselines" / "kernel_events.json"
)

#: Allowed normalized-throughput drop before the check fails.
REGRESSION_TOLERANCE = 0.30

_SPIN_ITERATIONS = 2_000_000


def _bench_config(fidelity: Fidelity):
    """The canonical hot-path workload: fig. 2, 2PL, think=0, 8 nodes.

    ``target_commits`` is zeroed so the horizon — and therefore the
    event count — is fixed by the fidelity alone, making the wall-clock
    comparison a pure dispatch-rate measurement.
    """
    config = scaling_config(
        fidelity, algorithm="2pl", think_time=0.0, num_nodes=8
    )
    return config.with_(
        target_commits=0, max_duration=config.duration
    )


def spin_rate(iterations: int = _SPIN_ITERATIONS) -> float:
    """Pure-Python iterations/second on this interpreter (best of 3)."""
    best = float("inf")
    for _ in range(3):
        counter = 0
        started = time.perf_counter()
        for value in range(iterations):
            counter += value
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return iterations / best


def run_benchmark(fidelity: Fidelity, repeats: int = 3) -> dict:
    """Run the workload ``repeats`` times; report the best dispatch rate."""
    best_wall = float("inf")
    dispatched = 0
    commits = 0
    for _ in range(max(1, repeats)):
        simulation = Simulation(_bench_config(fidelity))
        started = time.perf_counter()
        result = simulation.run()
        wall = time.perf_counter() - started
        if wall < best_wall:
            best_wall = wall
        dispatched = simulation.env.dispatch_count
        commits = result.commits
    events_per_sec = dispatched / best_wall if best_wall > 0 else 0.0
    rate = spin_rate()
    return {
        "benchmark": "kernel_hotpath",
        "fidelity": fidelity.name,
        "workload": "fig02 2pl think=0 nodes=8",
        "repeats": max(1, repeats),
        "events_dispatched": dispatched,
        "commits": commits,
        "best_wall_seconds": round(best_wall, 4),
        "events_per_sec": round(events_per_sec, 1),
        "spin_rate": round(rate, 1),
        "events_per_spin": round(events_per_sec / rate, 6),
        "fast_lane": os.environ.get("REPRO_KERNEL_FASTLANE", "1"),
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%S%z", time.localtime()
        ),
    }


def load_baseline(fidelity_name: str) -> float | None:
    """The committed normalized baseline for this fidelity, if any."""
    try:
        baselines = json.loads(
            BASELINE_PATH.read_text(encoding="utf-8")
        )
    except (OSError, ValueError):
        return None
    value = baselines.get(fidelity_name)
    return float(value) if isinstance(value, (int, float)) else None


def check_regression(record: dict) -> tuple[bool, str]:
    """Compare the normalized rate against the committed baseline."""
    baseline = load_baseline(record["fidelity"])
    if baseline is None:
        return True, (
            f"no committed baseline for fidelity "
            f"'{record['fidelity']}'; recorded "
            f"events_per_spin={record['events_per_spin']}"
        )
    floor = baseline * (1.0 - REGRESSION_TOLERANCE)
    measured = record["events_per_spin"]
    message = (
        f"events_per_spin={measured:.6f} vs baseline {baseline:.6f} "
        f"(floor {floor:.6f}, tolerance {REGRESSION_TOLERANCE:.0%})"
    )
    return measured >= floor, message


def _out_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUT")
    return Path(override) if override else DEFAULT_OUT


def append_record(record: dict, path: Path) -> None:
    """Append to the JSON trajectory (a list of records)."""
    records = []
    if path.is_file():
        try:
            records = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(records, list):
                records = [records]
        except (OSError, ValueError):
            records = []
    records.append(record)
    path.write_text(
        json.dumps(records, indent=2) + "\n", encoding="utf-8"
    )


def test_kernel_hotpath_events_per_sec():
    """Record the dispatch rate; enforce the baseline when asked.

    The regression gate only fires with ``$REPRO_BENCH_ENFORCE`` set
    (the CI perf-smoke job sets it); interactive runs record the
    trajectory without failing on machine noise.
    """
    fidelity = Fidelity.from_env(default="smoke")
    record = run_benchmark(fidelity)
    ok, message = check_regression(record)
    record["baseline_check"] = message
    append_record(record, _out_path())
    print(json.dumps(record, indent=2))
    if os.environ.get("REPRO_BENCH_ENFORCE"):
        assert ok, f"kernel dispatch rate regressed: {message}"


if __name__ == "__main__":  # pragma: no cover
    test_kernel_hotpath_events_per_sec()
