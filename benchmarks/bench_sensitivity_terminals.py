"""Sensitivity: multiprogramming level — the classic data-contention
thrashing hill, approached by adding terminals instead of shrinking
think times.

Regenerated via the experiment registry ("terminals"); set
REPRO_FIDELITY=full for the EXPERIMENTS.md-quality run.
"""


def test_sensitivity_terminals(run_experiment, fidelity):
    (series,) = run_experiment("terminals")
    if fidelity.name == "smoke":
        return  # smoke windows truncate multi-minute response times
    no_dc = series.curve("no_dc")
    opt = series.curve("opt")
    # NO_DC saturates: its last point stays near its peak.
    assert no_dc[-1] > 0.8 * max(no_dc)
    # OPT thrashes: well below its own peak at the highest MPL.
    assert opt[-1] < 0.9 * max(opt)
