"""Scaleout benchmark: simulator event rate as the machine grows.

Runs the registered ``scaleout`` experiment's fixed-per-node-load
configuration (see :mod:`repro.experiments.scaleout`) at a sweep of
machine sizes under the default fast path — calendar-queue scheduler
plus aggregated terminal arrivals — and records wall-clock events per
second, throughput and p99 per point.  At the largest swept size it
also runs the legacy configuration (binary heap + one resident Process
per terminal, ``REPRO_KERNEL_SCHED=heap REPRO_WORKLOAD_AGG=0``) on the
bit-identical event sequence and records the measured speedup.  Every
timed point runs in a fresh child interpreter so allocator state from
earlier points cannot skew the comparison (see :func:`_timed_run`);
that also makes the per-point ``peak_rss_mb`` the high-water mark of
exactly one configuration, which is where the aggregated-arrivals win
is largest (no resident generator frame per terminal).

Records are appended to ``BENCH_scaleout.json`` at the repo root
(override with ``$REPRO_BENCH_OUT``).  Rates are machine-dependent, so
each point carries the interpreter *spin rate* and the normalized
``events_per_spin``; the committed baseline
(``benchmarks/baselines/scaleout_events.json``) stores the fast path's
normalized rate per node count and the regression check compares
against it with a 30% tolerance — that is the events/sec floor the CI
``scaleout-smoke`` job enforces with ``$REPRO_BENCH_ENFORCE=1``.

Environment knobs:

* ``REPRO_SCALEOUT_NODES`` — comma-separated node counts overriding
  the fidelity default (CI uses a reduced sweep).
* ``REPRO_SCALEOUT_BASELINE=0`` — skip the heap+resident comparison
  runs (they multiply the wall time spent on the largest point).
* ``REPRO_SCALEOUT_PAIRS`` — adjacent comparison pairs for the
  speedup (default 3; the recorded value is the median pair ratio).

Run standalone (the full sweep reaches 1000 nodes / 10⁵ terminals)::

    REPRO_FIDELITY=bench python benchmarks/bench_scaleout.py

or through pytest (same JSON record)::

    pytest benchmarks/bench_scaleout.py -q
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX host
    resource = None

# Standalone-script convenience: make src/ importable without
# PYTHONPATH (pytest runs get it from the usual test environment).
try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(
        0, str(Path(__file__).resolve().parents[1] / "src")
    )

from repro.core.simulation import Simulation
from repro.experiments.fidelity import Fidelity
from repro.experiments.scaleout import (
    scaleout_config,
    scaleout_node_counts,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "BENCH_scaleout.json"
BASELINE_PATH = (
    Path(__file__).resolve().parent
    / "baselines"
    / "scaleout_events.json"
)

#: Allowed normalized-throughput drop before the check fails.
REGRESSION_TOLERANCE = 0.30

_SPIN_ITERATIONS = 2_000_000


def spin_rate(iterations: int = _SPIN_ITERATIONS) -> float:
    """Pure-Python iterations/second on this interpreter (best of 3)."""
    best = float("inf")
    for _ in range(3):
        counter = 0
        started = time.perf_counter()
        for value in range(iterations):
            counter += value
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return iterations / best


def _node_counts(fidelity: Fidelity) -> tuple:
    override = os.environ.get("REPRO_SCALEOUT_NODES")
    if override:
        return tuple(
            int(part) for part in override.split(",") if part.strip()
        )
    return scaleout_node_counts(fidelity)


def _measure(
    fidelity: Fidelity, num_nodes: int, scheduler: str, aggregated: str
) -> dict:
    """One timed run under explicit kernel/workload toggles."""
    saved = {
        key: os.environ.get(key)
        for key in ("REPRO_KERNEL_SCHED", "REPRO_WORKLOAD_AGG")
    }
    os.environ["REPRO_KERNEL_SCHED"] = scheduler
    os.environ["REPRO_WORKLOAD_AGG"] = aggregated
    try:
        simulation = Simulation(scaleout_config(fidelity, num_nodes))
        started = time.perf_counter()
        result = simulation.run()
        wall = time.perf_counter() - started
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    events = simulation.env.dispatch_count
    peak_rss_mb = None
    if resource is not None:
        # Meaningful per configuration because every timed point runs
        # in its own child interpreter: this is the high-water mark of
        # exactly one simulation.  ru_maxrss is in KiB on Linux.
        peak_rss_mb = round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
            1,
        )
    return {
        "nodes": num_nodes,
        "terminals": simulation.config.workload.num_terminals,
        "scheduler": scheduler,
        "aggregated_arrivals": aggregated != "0",
        "events_dispatched": events,
        "wall_seconds": round(wall, 4),
        "events_per_sec": round(
            events / wall if wall > 0 else 0.0, 1
        ),
        "throughput": round(result.throughput, 3),
        "response_p99": round(result.response_time_p99, 4),
        "commits": result.commits,
        "peak_rss_mb": peak_rss_mb,
    }


def _timed_run(
    fidelity: Fidelity, num_nodes: int, scheduler: str, aggregated: str
) -> dict:
    """Run one measurement in a fresh interpreter.

    Big points allocate hundreds of MB; running them back to back in
    one process lets earlier points' allocator and GC state skew later
    wall-clock readings by tens of percent (enough to flip the
    heap-vs-calendar comparison).  A child process per point keeps
    every measurement cold-started and comparable.  The child re-runs
    this file with ``--one`` and prints the measurement as JSON; the
    timed window (inside :func:`_measure`) never includes interpreter
    startup.
    """
    env = dict(os.environ)
    env["REPRO_FIDELITY"] = fidelity.name
    env["REPRO_KERNEL_SCHED"] = scheduler
    env["REPRO_WORKLOAD_AGG"] = aggregated
    completed = subprocess.run(
        [
            sys.executable,
            os.fspath(Path(__file__).resolve()),
            "--one",
            str(num_nodes),
            scheduler,
            aggregated,
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(completed.stdout.strip().splitlines()[-1])


def run_benchmark(fidelity: Fidelity) -> dict:
    """Sweep machine sizes; compare against heap+resident at the top."""
    rate = spin_rate()
    points = []
    for num_nodes in _node_counts(fidelity):
        point = _timed_run(fidelity, num_nodes, "calendar", "1")
        point["events_per_spin"] = round(
            point["events_per_sec"] / rate, 6
        )
        points.append(point)
    record = {
        "benchmark": "scaleout",
        "fidelity": fidelity.name,
        "workload": "fixed per-node load, 100 terminals/node, "
        "think 360s, 2pl",
        "spin_rate": round(rate, 1),
        "points": points,
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%S%z", time.localtime()
        ),
    }
    if os.environ.get("REPRO_SCALEOUT_BASELINE", "1") != "0" and points:
        top = points[-1]
        pairs = int(os.environ.get("REPRO_SCALEOUT_PAIRS", "3"))
        ratios = []
        legacy = None
        for _ in range(max(1, pairs)):
            # Host throughput drifts by tens of percent over minutes
            # (shared machine, thermal/cgroup throttling), swamping a
            # single A-vs-B measurement.  Adjacent pairs see the same
            # machine state, so their ratio is stable; the median
            # across pairs is the recorded speedup.
            fast = _timed_run(fidelity, top["nodes"], "calendar", "1")
            legacy = _timed_run(fidelity, top["nodes"], "heap", "0")
            # Bit-identity makes each pair a pure wall-clock
            # comparison: both configurations dispatched the same
            # events in the same order.
            assert (
                legacy["events_dispatched"] == top["events_dispatched"]
            )
            assert (
                fast["events_dispatched"] == top["events_dispatched"]
            )
            if legacy["events_per_sec"]:
                ratios.append(
                    fast["events_per_sec"] / legacy["events_per_sec"]
                )
        record["legacy_heap_resident"] = legacy
        if ratios:
            ratios.sort()
            record["speedup_pairs"] = [
                round(ratio, 3) for ratio in ratios
            ]
            record["speedup_vs_heap_resident"] = round(
                ratios[len(ratios) // 2], 3
            )
    return record


def load_baselines() -> dict:
    """Committed normalized rates, keyed by node count."""
    try:
        data = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    return data if isinstance(data, dict) else {}


def check_regression(record: dict) -> tuple[bool, str]:
    """Per-node-count events_per_spin floor vs the committed baseline."""
    baselines = load_baselines()
    if not baselines:
        return True, "no committed baseline; recorded only"
    failures = []
    checked = []
    for point in record["points"]:
        baseline = baselines.get(str(point["nodes"]))
        if not isinstance(baseline, (int, float)):
            continue
        floor = baseline * (1.0 - REGRESSION_TOLERANCE)
        measured = point["events_per_spin"]
        checked.append(
            f"nodes={point['nodes']}: {measured:.6f} vs baseline "
            f"{baseline:.6f} (floor {floor:.6f})"
        )
        if measured < floor:
            failures.append(checked[-1])
    message = "; ".join(checked) or "no matching baseline entries"
    return not failures, message


def _out_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUT")
    return Path(override) if override else DEFAULT_OUT


def append_record(record: dict, path: Path) -> None:
    """Append to the JSON trajectory (a list of records)."""
    records = []
    if path.is_file():
        try:
            records = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(records, list):
                records = [records]
        except (OSError, ValueError):
            records = []
    records.append(record)
    path.write_text(
        json.dumps(records, indent=2) + "\n", encoding="utf-8"
    )


def test_scaleout_events_per_sec():
    """Record the scaleout sweep; enforce the floor when asked."""
    fidelity = Fidelity.from_env(default="smoke")
    record = run_benchmark(fidelity)
    ok, message = check_regression(record)
    record["baseline_check"] = message
    append_record(record, _out_path())
    print(json.dumps(record, indent=2))
    if os.environ.get("REPRO_BENCH_ENFORCE"):
        assert ok, f"scaleout event rate regressed: {message}"


if __name__ == "__main__":  # pragma: no cover
    if len(sys.argv) > 1 and sys.argv[1] == "--one":
        # Child-process mode (see _timed_run): one measurement, JSON
        # on stdout.  Toggles arrive via the environment.
        print(
            json.dumps(
                _measure(
                    Fidelity.from_env(default="smoke"),
                    int(sys.argv[2]),
                    sys.argv[3],
                    sys.argv[4],
                )
            )
        )
    else:
        test_scaleout_events_per_sec()
