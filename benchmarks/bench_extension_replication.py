"""Extension: replicated data (read-one/write-all) x message cost —
testing footnote 13's claim about OPT vs 2PL with replicated data and
expensive messages.

Regenerated via the experiment registry ("replication"); set
REPRO_FIDELITY=full for the EXPERIMENTS.md-quality run.
"""


def test_extension_replication(run_experiment, fidelity):
    cheap_messages, costly_messages = run_experiment("replication")
    if fidelity.name == "smoke":
        return
    # Replication is never free: every algorithm loses throughput
    # going from 1 to 4 copies at either message cost.
    for figure in (cheap_messages, costly_messages):
        for name, curve in figure.curves.items():
            assert curve[-1] < curve[0], (name, curve)
